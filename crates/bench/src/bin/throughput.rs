//! Closed-loop throughput benchmark for the concurrent session engine.
//!
//! Builds the paper's temporal/100 % database, wraps it in an
//! [`Engine`], and drives it with `--threads N` sessions, each running a
//! seeded closed loop of `--ops M` statements: keyed retrieves (the
//! engine's lock-free snapshot read path), periodic `replace` updates
//! (`--write-every K`, 0 = read-only), and periodic two-variable joins
//! (`--join-every J`, 0 = none) that exercise decomposition. Reports
//! queries/second, per-op latency percentiles (p50/p95/p99), the
//! per-kind op counts, the I/O totals aggregated from every
//! statement's own counters, and the commit-lock counters that prove
//! reads never touched the lock.
//!
//! `--durable 1` rebuilds the same workload on a WAL-backed in-memory
//! database with **group commit** on (`--gc-max-batch`,
//! `--gc-max-delay-ms`), and additionally reports `commits / fsyncs` —
//! the batching win of coalescing many sessions' commits into one log
//! sync.
//!
//! `--server ADDR` switches the driver to **wire mode**: instead of an
//! embedded engine it connects `--threads N` real TCP clients to a
//! live `tdbms-server`, loads the workload over the wire (`--setup-rows`
//! tuples per relation, batched appends), and runs the same closed
//! loop through the network protocol — so qps and the latency tail
//! include framing, syscalls, and the server's per-query guardrails.
//!
//! `--chaos SEED` runs the resource-exhaustion acceptance drill
//! instead of a benchmark: it boots an in-process server on
//! file-backed, fault-wrapped storage, drives it with `--threads N`
//! reconnecting TCP clients, and flips disk-full / fsync-failure
//! faults (plus client-side connection drops) on a schedule that is a
//! pure function of SEED. The run fails loudly unless the server
//! survives, every acked append is still readable afterwards, workers
//! saw only typed retryable errors during fault windows, writes
//! resume once the faults lift, and the closing `tdbms-check` audit
//! of the directory is clean.
//!
//! Worker errors do not kill the run: they are counted, reported in
//! the `throughput:` line (`errors=`), and the JSON artifact is still
//! written with whatever completed (partial results are results).
//!
//! The op mix is a pure function of `--seed`; at `--threads 1` the I/O
//! totals are too, while at higher thread counts the shared warm
//! buffers make them vary slightly with the interleaving (the ledger
//! consistency assertion holds regardless).
//!
//! `--json PATH` additionally writes the whole report as one JSON
//! object (the `BENCH_throughput.json` artifact CI records).
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use tdbms_bench::{build_database, populate_database, BenchConfig};
use tdbms_core::{
    CheckpointPolicy, Database, Engine, GroupCommitConfig, LockStats,
    PhaseIo,
};
use tdbms_kernel::{DatabaseClass, Error, Prng, Value};
use tdbms_net::{
    Client, ReconnectClient, RetryConfig, Server, ServerConfig,
};
use tdbms_storage::{FaultDisk, FaultPlan, FileDisk, SharedMemDisk};
use tdbms_wal::{FaultLog, FileLog, SharedMemLog};

fn flag(name: &str, default: u64) -> u64 {
    let mut args = std::env::args();
    let eq = format!("--{name}=");
    while let Some(a) = args.next() {
        if a == format!("--{name}") {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                return n;
            }
        } else if let Some(n) =
            a.strip_prefix(&eq).and_then(|v| v.parse().ok())
        {
            return n;
        }
    }
    default
}

fn flag_str(name: &str) -> Option<String> {
    let mut args = std::env::args();
    let eq = format!("--{name}=");
    while let Some(a) = args.next() {
        if a == format!("--{name}") {
            return args.next();
        } else if let Some(v) = a.strip_prefix(&eq) {
            return Some(v.to_string());
        }
    }
    None
}

#[derive(Default)]
struct Totals {
    reads: u64,
    writes: u64,
    joins: u64,
    errors: u64,
    input_pages: u64,
    output_pages: u64,
    buffer_hits: u64,
    phases: Vec<PhaseIo>,
    /// Per-op wall-clock latencies in microseconds, unsorted.
    latencies_us: Vec<u64>,
}

impl Totals {
    fn absorb(&mut self, local: Totals) {
        self.reads += local.reads;
        self.writes += local.writes;
        self.joins += local.joins;
        self.errors += local.errors;
        self.input_pages += local.input_pages;
        self.output_pages += local.output_pages;
        self.buffer_hits += local.buffer_hits;
        self.latencies_us.extend(local.latencies_us);
        for p in local.phases {
            match self.phases.iter_mut().find(|q| q.name == p.name) {
                Some(q) => {
                    q.reads += p.reads;
                    q.writes += p.writes;
                    q.hits += p.hits;
                    q.evictions += p.evictions;
                }
                None => self.phases.push(p),
            }
        }
    }
}

/// `p` in [0, 100] over an unsorted sample; 0 for an empty one.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// The next statement of the seeded closed loop, with its kind tally.
fn next_stmt(
    rng: &mut Prng,
    op: u64,
    max_id: i64,
    join_every: u64,
    write_every: u64,
    local: &mut Totals,
) -> String {
    let id = rng.random_range(1i64..=max_id);
    if join_every > 0 && op.is_multiple_of(join_every) {
        local.joins += 1;
        format!(
            "retrieve (h.amount, i.seq) \
             where h.id = i.id and h.id = {id}"
        )
    } else if write_every > 0 && op.is_multiple_of(write_every) {
        local.writes += 1;
        format!("replace h (seq = h.seq + 1) where h.id = {id}")
    } else {
        local.reads += 1;
        format!("retrieve (h.amount) where h.id = {id}")
    }
}

fn main() {
    let threads = flag("threads", 1).max(1) as usize;
    let ops = flag("ops", 400);
    let write_every = flag("write-every", 8);
    let join_every = flag("join-every", 16);
    let seed = flag("seed", 0xbe9c);
    let durable = flag("durable", 0) == 1;
    let gc_max_batch = flag("gc-max-batch", 8) as u32;
    let gc_max_delay_ms = flag("gc-max-delay-ms", 2);
    let setup_rows = flag("setup-rows", 1024).clamp(1, 1 << 20);
    let json_path = flag_str("json");
    let server_addr = flag_str("server");

    if let Some(chaos_seed) =
        flag_str("chaos").and_then(|v| v.parse::<u64>().ok())
    {
        run_chaos_mode(chaos_seed, threads, ops, json_path);
        return;
    }

    let cfg = BenchConfig::new(DatabaseClass::Temporal, 100);
    let report = match server_addr {
        Some(addr) => run_server_mode(
            &addr,
            &cfg,
            threads,
            ops,
            write_every,
            join_every,
            seed,
            setup_rows,
        ),
        None => run_embedded_mode(
            &cfg,
            threads,
            ops,
            write_every,
            join_every,
            seed,
            durable,
            gc_max_batch,
            gc_max_delay_ms,
        ),
    };
    print_and_write(
        report,
        threads,
        ops,
        durable,
        gc_max_batch,
        gc_max_delay_ms,
        json_path,
    );
}

/// Everything both modes produce; `None` fields don't apply to the
/// mode that ran.
struct Report {
    mode: &'static str,
    done: u64,
    elapsed: Duration,
    totals: Totals,
    locks: Option<LockStats>,
    group: Option<(u64, u64)>,
    /// Statement-cache `(hits, misses)` of the engine that served the
    /// run — fetched over the wire in server mode.
    plan_cache: Option<(u64, u64)>,
    /// Server-mode health counters `(degraded, panics_caught,
    /// accept_errors)` from the same stats fetch: a benchmark run that
    /// degraded the engine mid-way is not a clean data point, and the
    /// report should say so.
    server_health: Option<(bool, u64, u64)>,
}

#[allow(clippy::too_many_arguments)]
fn run_embedded_mode(
    cfg: &BenchConfig,
    threads: usize,
    ops: u64,
    write_every: u64,
    join_every: u64,
    seed: u64,
    durable: bool,
    gc_max_batch: u32,
    gc_max_delay_ms: u64,
) -> Report {
    let mut db = if durable {
        // The same workload over a WAL-backed in-memory database:
        // every mutating statement is a durable transaction, and group
        // commit batches the sessions' log fsyncs. The checkpoint
        // policy is deliberately sparse so there is something left to
        // batch between checkpoints.
        let mut db = Database::open_durable_on(
            Box::new(SharedMemDisk::new()),
            Box::new(SharedMemLog::new()),
            None,
        )
        .expect("durable open on fresh in-memory storage");
        db.set_checkpoint_policy(CheckpointPolicy::EveryN(256));
        populate_database(&mut db, cfg);
        db.enable_group_commit(GroupCommitConfig {
            max_batch: gc_max_batch.max(1),
            max_delay: Duration::from_millis(gc_max_delay_ms),
        })
        .expect("database is durable");
        db
    } else {
        build_database(cfg)
    };
    // Throughput mode: warm, shared buffers (the paper's cold-statement
    // methodology is for per-query page counts, not sustained load).
    db.set_cold_statements(false);
    db.set_default_buffer_frames(8);
    for rel in [cfg.rel_h(), cfg.rel_i()] {
        db.set_buffer_frames(&rel, 8).expect("relation exists");
    }
    let engine = Engine::new(db);

    let rel_h = cfg.rel_h();
    let rel_i = cfg.rel_i();
    let completed = AtomicU64::new(0);
    let totals = Mutex::new(Totals::default());
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let engine = engine.clone();
            let (rel_h, rel_i) = (rel_h.clone(), rel_i.clone());
            let (completed, totals) = (&completed, &totals);
            s.spawn(move || {
                let mut rng = Prng::seed_from_u64(seed ^ (t as u64) << 32);
                let mut session = engine.session();
                let mut local = Totals::default();
                if session
                    .execute(&format!(
                        "range of h is {rel_h}\nrange of i is {rel_i}"
                    ))
                    .is_err()
                {
                    // Without range variables every op would fail;
                    // count the whole quota as errors and bail.
                    local.errors += ops;
                    totals.lock().expect("unpoisoned").absorb(local);
                    return;
                }
                for op in 1..=ops {
                    let stmt = next_stmt(
                        &mut rng,
                        op,
                        1024,
                        join_every,
                        write_every,
                        &mut local,
                    );
                    let t0 = Instant::now();
                    match session.execute(&stmt) {
                        Ok(out) => {
                            local
                                .latencies_us
                                .push(t0.elapsed().as_micros() as u64);
                            local.input_pages += out.stats.input_pages;
                            local.output_pages += out.stats.output_pages;
                            local.buffer_hits += out.stats.buffer_hits;
                            for p in &out.stats.phases {
                                match local
                                    .phases
                                    .iter_mut()
                                    .find(|q| q.name == p.name)
                                {
                                    Some(q) => {
                                        q.reads += p.reads;
                                        q.writes += p.writes;
                                        q.hits += p.hits;
                                        q.evictions += p.evictions;
                                    }
                                    None => local.phases.push(p.clone()),
                                }
                            }
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            // Keep going: a failed op is a data point,
                            // not a reason to lose the whole report.
                            local.errors += 1;
                            eprintln!("worker {t} op failed: {e}");
                        }
                    }
                }
                totals.lock().expect("unpoisoned").absorb(local);
            });
        }
    });
    let elapsed = start.elapsed();
    let done = completed.load(Ordering::Relaxed);
    let totals = totals.into_inner().expect("unpoisoned");

    // Capture the proof counters before the final consistency check —
    // that check itself takes one shared lock.
    let locks = engine.lock_stats();
    let group = engine.group_commit_stats();
    let plan_cache = engine.plan_cache_stats();

    // Accounting must have survived the contention.
    engine.with_read(|db| assert!(db.io_stats().is_consistent()));

    Report {
        mode: "embedded",
        done,
        elapsed,
        totals,
        locks: Some(locks),
        group,
        plan_cache: Some(plan_cache),
        server_health: None,
    }
}

/// Load the benchmark schema and rows through the wire. Idempotent:
/// if the relations already exist (a previous run against the same
/// server), population is skipped.
fn setup_over_wire(
    c: &mut Client,
    cfg: &BenchConfig,
    setup_rows: u64,
    seed: u64,
) {
    let mut rng = Prng::seed_from_u64(seed);
    for (rel, method) in [(cfg.rel_h(), "hash"), (cfg.rel_i(), "isam")] {
        let created = c.query(&format!(
            "create temporal interval {rel} \
             (id = i4, amount = i4, seq = i4, string = c96)"
        ));
        if created.is_err() {
            // Already loaded by a previous driver run; reuse it.
            continue;
        }
        // Batched appends: one request per 64 statements keeps the
        // round-trip count (and wire overhead) sane during setup.
        let mut batch = String::new();
        let mut in_batch = 0;
        for id in 1..=setup_rows {
            let amount = rng.random_range(0i64..1000) * 100;
            let string: String = (0..12)
                .map(|_| rng.random_range(b'a'..=b'z') as char)
                .collect();
            batch.push_str(&format!(
                "append to {rel} (id = {id}, amount = {amount}, \
                 seq = 0, string = \"{string}\")\n"
            ));
            in_batch += 1;
            if in_batch == 64 {
                c.query(&batch).expect("setup append batch");
                batch.clear();
                in_batch = 0;
            }
        }
        if in_batch > 0 {
            c.query(&batch).expect("setup append batch");
        }
        c.query(&format!(
            "modify {rel} to {method} on id where fillfactor = {}",
            cfg.fillfactor
        ))
        .expect("modify benchmark relation");
    }
}

#[allow(clippy::too_many_arguments)]
fn run_server_mode(
    addr: &str,
    cfg: &BenchConfig,
    threads: usize,
    ops: u64,
    write_every: u64,
    join_every: u64,
    seed: u64,
    setup_rows: u64,
) -> Report {
    let mut setup = Client::connect(addr).unwrap_or_else(|e| {
        panic!("cannot connect to tdbms-server at {addr}: {e}")
    });
    setup.ping().expect("server answers ping");
    setup_over_wire(&mut setup, cfg, setup_rows, seed);
    drop(setup);

    let rel_h = cfg.rel_h();
    let rel_i = cfg.rel_i();
    let completed = AtomicU64::new(0);
    let totals = Mutex::new(Totals::default());
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let (rel_h, rel_i) = (rel_h.clone(), rel_i.clone());
            let (completed, totals) = (&completed, &totals);
            s.spawn(move || {
                let mut rng = Prng::seed_from_u64(seed ^ (t as u64) << 32);
                let mut local = Totals::default();
                let mut client = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("worker {t}: connect failed: {e}");
                        local.errors += ops;
                        totals.lock().expect("unpoisoned").absorb(local);
                        return;
                    }
                };
                if client
                    .query(&format!(
                        "range of h is {rel_h}\nrange of i is {rel_i}"
                    ))
                    .is_err()
                {
                    local.errors += ops;
                    totals.lock().expect("unpoisoned").absorb(local);
                    return;
                }
                for op in 1..=ops {
                    let stmt = next_stmt(
                        &mut rng,
                        op,
                        setup_rows as i64,
                        join_every,
                        write_every,
                        &mut local,
                    );
                    let t0 = Instant::now();
                    match client.query(&stmt) {
                        Ok(reply) => {
                            local
                                .latencies_us
                                .push(t0.elapsed().as_micros() as u64);
                            local.input_pages += reply.input_pages;
                            local.output_pages += reply.output_pages;
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            local.errors += 1;
                            eprintln!("worker {t} op failed: {e}");
                        }
                    }
                }
                totals.lock().expect("unpoisoned").absorb(local);
            });
        }
    });
    let elapsed = start.elapsed();
    // The counters live in the server process; fetch them over the
    // wire so the report carries the same proof lines as embedded mode.
    let (locks, plan_cache, server_health) =
        match Client::connect(addr).and_then(|mut c| c.stats()) {
            Ok(s) => (
                Some(LockStats {
                    shared: s.shared,
                    exclusive: s.exclusive,
                    snapshot_reads: s.snapshot_reads,
                }),
                Some((s.plan_hits, s.plan_misses)),
                Some((s.degraded, s.panics_caught, s.accept_errors)),
            ),
            Err(e) => {
                eprintln!("stats fetch failed: {e}");
                (None, None, None)
            }
        };
    Report {
        mode: "server",
        done: completed.load(Ordering::Relaxed),
        elapsed,
        totals: totals.into_inner().expect("unpoisoned"),
        locks,
        group: None,
        plan_cache,
        server_health,
    }
}

/// Typed errors a worker may legitimately see while a fault window is
/// open (or immediately after one, before the engine re-arms). Reads
/// are held to a stricter standard than writes: degraded mode is
/// read-only by design, so `Degraded` on a retrieve would mean the
/// snapshot-read promise broke.
fn tolerated_error(e: &Error, write: bool) -> Option<&'static str> {
    match e {
        Error::Degraded { .. } if write => Some("degraded"),
        Error::RetryUnsafe(_) if write => Some("retry_unsafe"),
        Error::Busy => Some("busy"),
        Error::Timeout { .. } => Some("timeout"),
        Error::ShuttingDown => Some("shutting_down"),
        _ => None,
    }
}

/// What the chaos workers observed, merged across threads.
#[derive(Default)]
struct ChaosTotals {
    /// ids of appends the server acknowledged — each must still be
    /// readable once the faults lift.
    acked: Vec<i64>,
    ok_reads: u64,
    degraded: u64,
    busy: u64,
    timeout: u64,
    retry_unsafe: u64,
    shutting_down: u64,
    reconnects: u64,
    retries: u64,
    /// Errors outside the tolerated typed set — any entry fails the
    /// run.
    violations: Vec<String>,
}

/// The resource-exhaustion acceptance drill (`--chaos SEED`): a real
/// TCP server on fault-wrapped file storage, reconnecting clients,
/// and a seeded schedule of disk-full / fsync-failure windows plus
/// client-side connection drops. Panics (nonzero exit) on any broken
/// invariant; prints a `chaos:` summary and optionally a JSON
/// artifact on success.
fn run_chaos_mode(
    chaos_seed: u64,
    threads: usize,
    ops: u64,
    json_path: Option<String>,
) {
    let dir = tdbms_kernel::tmpdir::fresh_dir("chaos-throughput");
    let plan = FaultPlan::new(None);
    let disk = FaultDisk::new(
        Box::new(FileDisk::open(&dir).expect("open page files")),
        plan.clone(),
    );
    let log = FaultLog::new(
        Box::new(FileLog::open(dir.join("wal.tdbms")).expect("open wal")),
        plan.clone(),
    );
    let mut db = Database::open_durable_on(
        Box::new(disk),
        Box::new(log),
        Some(dir.clone()),
    )
    .expect("durable open on fresh fault-wrapped storage");
    db.set_checkpoint_policy(CheckpointPolicy::EveryN(64));
    db.enable_group_commit(GroupCommitConfig {
        max_batch: 8,
        max_delay: Duration::from_millis(2),
    })
    .expect("database is durable");

    let server = Server::bind(
        Engine::new(db),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address").to_string();
    let handle = server.handle();
    let server_exited = AtomicBool::new(false);
    let done = AtomicBool::new(false);
    let windows = AtomicU64::new(0);
    let totals = Mutex::new(ChaosTotals::default());

    let (resume_attempts, server_stats, elapsed) =
        std::thread::scope(|s| {
            let server_thread = s.spawn(|| {
                let stats = server.run();
                server_exited.store(true, Ordering::SeqCst);
                stats
            });

            // Schema setup runs before any fault window opens.
            let mut setup =
                Client::connect(&addr).expect("connect for setup");
            setup.ping().expect("server answers ping");
            setup
                .query("create temporal interval chaos (id = i4, seq = i4)")
                .expect("create chaos relation");
            drop(setup);

            // The fault controller: the sequence of window kinds and
            // durations is a pure function of the chaos seed; only its
            // interleaving with worker ops varies run to run.
            let controller = s.spawn(|| {
                let mut rng = Prng::seed_from_u64(chaos_seed);
                while !done.load(Ordering::SeqCst) {
                    let healthy = 5 + rng.random_range(0u64..15);
                    std::thread::sleep(Duration::from_millis(healthy));
                    if done.load(Ordering::SeqCst) {
                        break;
                    }
                    let kind = rng.random_range(0u64..3);
                    if kind != 1 {
                        plan.set_enospc(true);
                    }
                    if kind != 0 {
                        plan.set_fsync_fail(true);
                    }
                    windows.fetch_add(1, Ordering::Relaxed);
                    let width = 3 + rng.random_range(0u64..10);
                    std::thread::sleep(Duration::from_millis(width));
                    plan.set_enospc(false);
                    plan.set_fsync_fail(false);
                }
            });

            let start = Instant::now();
            let mut workers = Vec::new();
            for t in 0..threads {
                let (addr, totals) = (&addr, &totals);
                workers.push(s.spawn(move || {
                    let mut rng = Prng::seed_from_u64(
                        chaos_seed ^ ((t as u64) << 32),
                    );
                    let mut client = ReconnectClient::new(
                        addr.as_str(),
                        RetryConfig {
                            max_attempts: 5,
                            base_backoff: Duration::from_millis(2),
                            max_backoff: Duration::from_millis(50),
                            seed: chaos_seed ^ (t as u64),
                        },
                    );
                    let mut local = ChaosTotals::default();
                    for op in 1..=ops {
                        // A seeded network blip: the next request has
                        // to redial.
                        if rng.random_range(0u64..37) == 0 {
                            client.drop_connection();
                        }
                        let id = t as i64 * 1_000_000 + op as i64;
                        let write =
                            !op.is_multiple_of(4) || local.acked.is_empty();
                        let stmt = if write {
                            format!("append to chaos (id = {id}, seq = 0)")
                        } else {
                            let n = rng.random_range(
                                0u64..local.acked.len() as u64,
                            );
                            format!(
                                "range of c is chaos\nretrieve (c.id) \
                                 where c.id = {}",
                                local.acked[n as usize]
                            )
                        };
                        match client.query(&stmt) {
                            Ok(reply) if write => {
                                local.acked.push(id);
                                let _ = reply;
                            }
                            Ok(reply) => {
                                // An acked tuple must stay visible
                                // even mid-window: degraded mode is
                                // read-only, not read-broken.
                                if reply.rows.is_empty() {
                                    local.violations.push(format!(
                                        "acked tuple invisible to a \
                                         retrieve (op {op})"
                                    ));
                                }
                                local.ok_reads += 1;
                            }
                            Err(e) => match tolerated_error(&e, write) {
                                Some("degraded") => local.degraded += 1,
                                Some("busy") => local.busy += 1,
                                Some("timeout") => local.timeout += 1,
                                Some("retry_unsafe") => {
                                    local.retry_unsafe += 1
                                }
                                Some(_) => local.shutting_down += 1,
                                None => local.violations.push(format!(
                                    "worker {t} op {op}: \
                                             untyped or unexpected \
                                             error: {e}"
                                )),
                            },
                        }
                    }
                    local.reconnects = client.reconnects();
                    local.retries = client.retries();
                    let mut all = totals.lock().expect("unpoisoned");
                    all.acked.append(&mut local.acked);
                    all.ok_reads += local.ok_reads;
                    all.degraded += local.degraded;
                    all.busy += local.busy;
                    all.timeout += local.timeout;
                    all.retry_unsafe += local.retry_unsafe;
                    all.shutting_down += local.shutting_down;
                    all.reconnects += local.reconnects;
                    all.retries += local.retries;
                    all.violations.append(&mut local.violations);
                }));
            }
            for w in workers {
                w.join().expect("worker thread");
            }
            let elapsed = start.elapsed();
            done.store(true, Ordering::SeqCst);
            controller.join().expect("controller thread");
            plan.set_enospc(false);
            plan.set_fsync_fail(false);

            assert!(
                !server_exited.load(Ordering::SeqCst),
                "chaos: the server exited before shutdown was requested"
            );

            // Writes must resume once the faults lift: the first
            // attempts may still see the engine re-arming.
            let mut resume =
                Client::connect(&addr).expect("connect for resume check");
            let mut resume_attempts = 0u64;
            loop {
                resume_attempts += 1;
                match resume
                    .query("append to chaos (id = 999000001, seq = 1)")
                {
                    Ok(_) => break,
                    Err(Error::Degraded { .. }) if resume_attempts < 50 => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(e) => {
                        panic!(
                            "chaos: writes did not resume after the \
                             faults lifted: {e}"
                        )
                    }
                }
            }

            // Every acked append must still be readable over the wire.
            let reply = resume
                .query("range of c is chaos\nretrieve (c.id)")
                .expect("verification retrieve");
            let present: std::collections::HashSet<i64> = reply
                .rows
                .iter()
                .filter_map(|r| match r.first() {
                    Some(Value::Int(id)) => Some(*id),
                    _ => None,
                })
                .collect();
            {
                let all = totals.lock().expect("unpoisoned");
                for id in &all.acked {
                    assert!(
                        present.contains(id),
                        "chaos: acked append id={id} lost"
                    );
                }
            }
            drop(resume);

            handle.shutdown();
            let server_stats = server_thread
                .join()
                .expect("server thread")
                .expect("graceful drain");
            (resume_attempts, server_stats, elapsed)
        });

    let totals = totals.into_inner().expect("unpoisoned");
    if !totals.violations.is_empty() {
        for v in &totals.violations {
            eprintln!("chaos violation: {v}");
        }
        panic!("chaos: {} invariant violation(s)", totals.violations.len());
    }
    assert_eq!(
        server_stats.panics_caught, 0,
        "chaos: the server caught worker panics"
    );

    // The surviving directory must audit clean.
    let audit = tdbms_check::CheckedDb::open(&dir)
        .expect("reopen for audit")
        .check()
        .expect("audit run");
    assert!(audit.is_clean(), "chaos: audit dirty:\n{}", audit.render());

    let windows = windows.load(Ordering::Relaxed);
    println!(
        "chaos: seed={chaos_seed} threads={threads} ops/thread={ops} \
         acked={} ok_reads={} fault_windows={windows}",
        totals.acked.len(),
        totals.ok_reads
    );
    println!(
        "chaos-errors: degraded={} busy={} timeout={} retry_unsafe={} \
         shutting_down={}",
        totals.degraded,
        totals.busy,
        totals.timeout,
        totals.retry_unsafe,
        totals.shutting_down
    );
    println!(
        "chaos-client: reconnects={} retries={} resume_attempts={}",
        totals.reconnects, totals.retries, resume_attempts
    );
    println!(
        "chaos-server: queries={} errors={} panics_caught={} \
         accept_errors={}",
        server_stats.queries,
        server_stats.query_errors,
        server_stats.panics_caught,
        server_stats.accept_errors
    );
    println!(
        "audit: clean — no acked tuple lost, elapsed={:.3}s",
        elapsed.as_secs_f64()
    );

    let Some(path) = json_path else { return };
    let json = format!(
        "{{\n  \"bench\": \"chaos\",\n  \"seed\": {chaos_seed},\n  \
         \"threads\": {threads},\n  \"ops_per_thread\": {ops},\n  \
         \"acked\": {},\n  \"ok_reads\": {},\n  \
         \"fault_windows\": {windows},\n  \
         \"errors\": {{\"degraded\": {}, \"busy\": {}, \
         \"timeout\": {}, \"retry_unsafe\": {}, \
         \"shutting_down\": {}}},\n  \
         \"client\": {{\"reconnects\": {}, \"retries\": {}, \
         \"resume_attempts\": {resume_attempts}}},\n  \
         \"server\": {{\"queries\": {}, \"query_errors\": {}, \
         \"panics_caught\": {}, \"accept_errors\": {}}},\n  \
         \"audit_clean\": true,\n  \"elapsed_secs\": {:.6}\n}}\n",
        totals.acked.len(),
        totals.ok_reads,
        totals.degraded,
        totals.busy,
        totals.timeout,
        totals.retry_unsafe,
        totals.shutting_down,
        totals.reconnects,
        totals.retries,
        server_stats.queries,
        server_stats.query_errors,
        server_stats.panics_caught,
        server_stats.accept_errors,
        elapsed.as_secs_f64(),
    );
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => {
            eprintln!(
                "invariant artifact-written violated: chaos run \
                 completed but its JSON evidence is lost \
                 (cannot write {path}: {e})"
            );
            std::process::exit(2);
        }
    }
}

fn print_and_write(
    report: Report,
    threads: usize,
    ops: u64,
    durable: bool,
    gc_max_batch: u32,
    gc_max_delay_ms: u64,
    json_path: Option<String>,
) {
    let Report {
        mode,
        done,
        elapsed,
        mut totals,
        locks,
        group,
        plan_cache,
        server_health,
    } = report;

    println!(
        "throughput: threads={threads} ops/thread={ops} total={done} \
         (reads={} writes={} joins={} errors={})",
        totals.reads, totals.writes, totals.joins, totals.errors
    );
    println!(
        "io: input_pages={} output_pages={} buffer_hits={}",
        totals.input_pages, totals.output_pages, totals.buffer_hits
    );
    totals.phases.sort_by(|a, b| a.name.cmp(&b.name));
    for p in &totals.phases {
        println!(
            "phase {}: reads={} writes={} hits={}",
            p.name, p.reads, p.writes, p.hits
        );
    }
    // The lock-free-read proof: every retrieve in the mix is snapshot-
    // eligible (the relations are temporal), so the commit lock is
    // taken only by writers. (Embedded mode only; over the wire the
    // counters live in the server process.)
    if let Some(locks) = locks {
        println!(
            "locks: shared={} exclusive={} snapshot_reads={}",
            locks.shared, locks.exclusive, locks.snapshot_reads
        );
    }
    if let Some((hits, misses)) = plan_cache {
        println!(
            "plan-cache: hits={hits} misses={misses} hit-rate={:.1}%",
            100.0 * hits as f64 / ((hits + misses).max(1)) as f64
        );
    }
    if let Some((commits, fsyncs)) = group {
        println!(
            "group-commit: commits={commits} fsyncs={fsyncs} \
             commits_per_fsync={:.2}",
            commits as f64 / (fsyncs.max(1)) as f64
        );
    }
    if let Some((degraded, panics, accept_errors)) = server_health {
        println!(
            "server-health: degraded={degraded} panics_caught={panics} \
             accept_errors={accept_errors}"
        );
    }

    totals.latencies_us.sort_unstable();
    let (p50, p95, p99) = (
        percentile(&totals.latencies_us, 50.0),
        percentile(&totals.latencies_us, 95.0),
        percentile(&totals.latencies_us, 99.0),
    );
    println!("latency_us: p50={p50} p95={p95} p99={p99}");

    let qps = done as f64 / elapsed.as_secs_f64().max(1e-9);
    println!("elapsed={:.3}s qps={:.0}", elapsed.as_secs_f64(), qps);

    let Some(path) = json_path else { return };
    let locks_json = match locks {
        Some(l) => format!(
            "{{\"shared\": {}, \"exclusive\": {}, \
             \"snapshot_reads\": {}}}",
            l.shared, l.exclusive, l.snapshot_reads
        ),
        None => "null".to_string(),
    };
    let plan_cache_json = match plan_cache {
        Some((hits, misses)) => format!(
            "{{\"hits\": {hits}, \"misses\": {misses}, \
             \"hit_rate\": {:.4}}}",
            hits as f64 / ((hits + misses).max(1)) as f64
        ),
        None => "null".to_string(),
    };
    let group_json = match group {
        Some((commits, fsyncs)) => format!(
            "{{\"max_batch\": {gc_max_batch}, \
             \"max_delay_ms\": {gc_max_delay_ms}, \
             \"commits\": {commits}, \"fsyncs\": {fsyncs}, \
             \"commits_per_fsync\": {:.4}}}",
            commits as f64 / (fsyncs.max(1)) as f64
        ),
        None => "null".to_string(),
    };
    let health_json = match server_health {
        Some((degraded, panics, accept_errors)) => format!(
            "{{\"degraded\": {degraded}, \
             \"panics_caught\": {panics}, \
             \"accept_errors\": {accept_errors}}}"
        ),
        None => "null".to_string(),
    };
    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"mode\": \"{mode}\",\n  \
         \"threads\": {threads},\n  \"ops_per_thread\": {ops},\n  \
         \"total_ops\": {done},\n  \"reads\": {},\n  \
         \"writes\": {},\n  \"joins\": {},\n  \"errors\": {},\n  \
         \"durable\": {durable},\n  \
         \"locks\": {locks_json},\n  \
         \"plan_cache\": {plan_cache_json},\n  \
         \"group_commit\": {group_json},\n  \
         \"server_health\": {health_json},\n  \
         \"io\": {{\"input_pages\": {}, \"output_pages\": {}, \
         \"buffer_hits\": {}}},\n  \
         \"latency_us\": {{\"p50\": {p50}, \"p95\": {p95}, \
         \"p99\": {p99}}},\n  \
         \"elapsed_secs\": {:.6},\n  \"qps\": {:.1}\n}}\n",
        totals.reads,
        totals.writes,
        totals.joins,
        totals.errors,
        totals.input_pages,
        totals.output_pages,
        totals.buffer_hits,
        elapsed.as_secs_f64(),
        qps,
    );
    // Partial results are results: this write happens even when every
    // op errored, so CI always has a valid artifact to record — and a
    // write failure is itself fatal, because a gate that silently runs
    // without its artifact compares against stale numbers.
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => {
            eprintln!(
                "invariant artifact-written violated: throughput run \
                 completed but its JSON evidence is lost \
                 (cannot write {path}: {e})"
            );
            std::process::exit(2);
        }
    }
}
