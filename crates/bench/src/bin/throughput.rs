//! Closed-loop throughput benchmark for the concurrent session engine.
//!
//! Builds the paper's temporal/100 % database, wraps it in an
//! [`Engine`], and drives it with `--threads N` sessions, each running a
//! seeded closed loop of `--ops M` statements: keyed retrieves (the
//! engine's lock-free snapshot read path), periodic `replace` updates
//! (`--write-every K`, 0 = read-only), and periodic two-variable joins
//! (`--join-every J`, 0 = none) that exercise decomposition. Reports
//! queries/second, the per-kind op counts, the I/O totals aggregated
//! from every statement's own counters, and the commit-lock counters
//! that prove reads never touched the lock.
//!
//! `--durable 1` rebuilds the same workload on a WAL-backed in-memory
//! database with **group commit** on (`--gc-max-batch`,
//! `--gc-max-delay-ms`), and additionally reports `commits / fsyncs` —
//! the batching win of coalescing many sessions' commits into one log
//! sync.
//!
//! The op mix is a pure function of `--seed`; at `--threads 1` the I/O
//! totals are too, while at higher thread counts the shared warm
//! buffers make them vary slightly with the interleaving (the ledger
//! consistency assertion holds regardless).
//!
//! `--json PATH` additionally writes the whole report as one JSON
//! object (the `BENCH_throughput.json` artifact CI records).
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use tdbms_bench::{build_database, populate_database, BenchConfig};
use tdbms_core::{
    CheckpointPolicy, Database, Engine, GroupCommitConfig, PhaseIo,
};
use tdbms_kernel::{DatabaseClass, Prng};
use tdbms_storage::SharedMemDisk;
use tdbms_wal::SharedMemLog;

fn flag(name: &str, default: u64) -> u64 {
    let mut args = std::env::args();
    let eq = format!("--{name}=");
    while let Some(a) = args.next() {
        if a == format!("--{name}") {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                return n;
            }
        } else if let Some(n) =
            a.strip_prefix(&eq).and_then(|v| v.parse().ok())
        {
            return n;
        }
    }
    default
}

fn flag_str(name: &str) -> Option<String> {
    let mut args = std::env::args();
    let eq = format!("--{name}=");
    while let Some(a) = args.next() {
        if a == format!("--{name}") {
            return args.next();
        } else if let Some(v) = a.strip_prefix(&eq) {
            return Some(v.to_string());
        }
    }
    None
}

#[derive(Default)]
struct Totals {
    reads: u64,
    writes: u64,
    joins: u64,
    input_pages: u64,
    output_pages: u64,
    buffer_hits: u64,
    phases: Vec<PhaseIo>,
}

fn main() {
    let threads = flag("threads", 1).max(1) as usize;
    let ops = flag("ops", 400);
    let write_every = flag("write-every", 8);
    let join_every = flag("join-every", 16);
    let seed = flag("seed", 0xbe9c);
    let durable = flag("durable", 0) == 1;
    let gc_max_batch = flag("gc-max-batch", 8) as u32;
    let gc_max_delay_ms = flag("gc-max-delay-ms", 2);
    let json_path = flag_str("json");

    let cfg = BenchConfig::new(DatabaseClass::Temporal, 100);
    let mut db = if durable {
        // The same workload over a WAL-backed in-memory database:
        // every mutating statement is a durable transaction, and group
        // commit batches the sessions' log fsyncs. The checkpoint
        // policy is deliberately sparse so there is something left to
        // batch between checkpoints.
        let mut db = Database::open_durable_on(
            Box::new(SharedMemDisk::new()),
            Box::new(SharedMemLog::new()),
            None,
        )
        .expect("durable open on fresh in-memory storage");
        db.set_checkpoint_policy(CheckpointPolicy::EveryN(256));
        populate_database(&mut db, &cfg);
        db.enable_group_commit(GroupCommitConfig {
            max_batch: gc_max_batch.max(1),
            max_delay: Duration::from_millis(gc_max_delay_ms),
        })
        .expect("database is durable");
        db
    } else {
        build_database(&cfg)
    };
    // Throughput mode: warm, shared buffers (the paper's cold-statement
    // methodology is for per-query page counts, not sustained load).
    db.set_cold_statements(false);
    db.set_default_buffer_frames(8);
    for rel in [cfg.rel_h(), cfg.rel_i()] {
        db.set_buffer_frames(&rel, 8).expect("relation exists");
    }
    let engine = Engine::new(db);

    let rel_h = cfg.rel_h();
    let rel_i = cfg.rel_i();
    let completed = AtomicU64::new(0);
    let totals = Mutex::new(Totals::default());
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let engine = engine.clone();
            let (rel_h, rel_i) = (rel_h.clone(), rel_i.clone());
            let (completed, totals) = (&completed, &totals);
            s.spawn(move || {
                let mut rng = Prng::seed_from_u64(seed ^ (t as u64) << 32);
                let mut session = engine.session();
                session
                    .execute(&format!(
                        "range of h is {rel_h}\nrange of i is {rel_i}"
                    ))
                    .expect("declare ranges");
                let mut local = Totals::default();
                for op in 1..=ops {
                    let id = rng.random_range(1i64..=1024);
                    let stmt = if join_every > 0 && op % join_every == 0 {
                        local.joins += 1;
                        format!(
                            "retrieve (h.amount, i.seq) \
                             where h.id = i.id and h.id = {id}"
                        )
                    } else if write_every > 0 && op % write_every == 0 {
                        local.writes += 1;
                        format!(
                            "replace h (seq = h.seq + 1) where h.id = {id}"
                        )
                    } else {
                        local.reads += 1;
                        format!("retrieve (h.amount) where h.id = {id}")
                    };
                    let out = session.execute(&stmt).unwrap_or_else(|e| {
                        panic!("op failed: {e}\n{stmt}")
                    });
                    local.input_pages += out.stats.input_pages;
                    local.output_pages += out.stats.output_pages;
                    local.buffer_hits += out.stats.buffer_hits;
                    for p in &out.stats.phases {
                        match local
                            .phases
                            .iter_mut()
                            .find(|q| q.name == p.name)
                        {
                            Some(q) => {
                                q.reads += p.reads;
                                q.writes += p.writes;
                                q.hits += p.hits;
                                q.evictions += p.evictions;
                            }
                            None => local.phases.push(p.clone()),
                        }
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                }
                let mut all = totals.lock().expect("no panics hold this");
                all.reads += local.reads;
                all.writes += local.writes;
                all.joins += local.joins;
                all.input_pages += local.input_pages;
                all.output_pages += local.output_pages;
                all.buffer_hits += local.buffer_hits;
                for p in local.phases {
                    match all.phases.iter_mut().find(|q| q.name == p.name) {
                        Some(q) => {
                            q.reads += p.reads;
                            q.writes += p.writes;
                            q.hits += p.hits;
                            q.evictions += p.evictions;
                        }
                        None => all.phases.push(p),
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let done = completed.load(Ordering::Relaxed);
    let totals = totals.into_inner().expect("unpoisoned");

    // Capture the proof counters before the final consistency check —
    // that check itself takes one shared lock.
    let locks = engine.lock_stats();
    let group = engine.group_commit_stats();

    // Accounting must have survived the contention.
    engine.with_read(|db| assert!(db.io_stats().is_consistent()));

    println!(
        "throughput: threads={threads} ops/thread={ops} total={done} \
         (reads={} writes={} joins={})",
        totals.reads, totals.writes, totals.joins
    );
    println!(
        "io: input_pages={} output_pages={} buffer_hits={}",
        totals.input_pages, totals.output_pages, totals.buffer_hits
    );
    let mut phases = totals.phases;
    phases.sort_by(|a, b| a.name.cmp(&b.name));
    for p in &phases {
        println!(
            "phase {}: reads={} writes={} hits={}",
            p.name, p.reads, p.writes, p.hits
        );
    }
    // The lock-free-read proof: every retrieve in the mix is snapshot-
    // eligible (the relations are temporal), so the commit lock is
    // taken only by writers.
    println!(
        "locks: shared={} exclusive={} snapshot_reads={}",
        locks.shared, locks.exclusive, locks.snapshot_reads
    );
    if let Some((commits, fsyncs)) = group {
        println!(
            "group-commit: commits={commits} fsyncs={fsyncs} \
             commits_per_fsync={:.2}",
            commits as f64 / (fsyncs.max(1)) as f64
        );
    }
    let qps = done as f64 / elapsed.as_secs_f64().max(1e-9);
    println!("elapsed={:.3}s qps={:.0}", elapsed.as_secs_f64(), qps);

    if let Some(path) = json_path {
        let group_json = match group {
            Some((commits, fsyncs)) => format!(
                "{{\"max_batch\": {gc_max_batch}, \
                 \"max_delay_ms\": {gc_max_delay_ms}, \
                 \"commits\": {commits}, \"fsyncs\": {fsyncs}, \
                 \"commits_per_fsync\": {:.4}}}",
                commits as f64 / (fsyncs.max(1)) as f64
            ),
            None => "null".to_string(),
        };
        let json = format!(
            "{{\n  \"bench\": \"throughput\",\n  \
             \"threads\": {threads},\n  \"ops_per_thread\": {ops},\n  \
             \"total_ops\": {done},\n  \"reads\": {},\n  \
             \"writes\": {},\n  \"joins\": {},\n  \
             \"durable\": {durable},\n  \
             \"locks\": {{\"shared\": {}, \"exclusive\": {}, \
             \"snapshot_reads\": {}}},\n  \
             \"group_commit\": {group_json},\n  \
             \"io\": {{\"input_pages\": {}, \"output_pages\": {}, \
             \"buffer_hits\": {}}},\n  \
             \"elapsed_secs\": {:.6},\n  \"qps\": {:.1}\n}}\n",
            totals.reads,
            totals.writes,
            totals.joins,
            locks.shared,
            locks.exclusive,
            locks.snapshot_reads,
            totals.input_pages,
            totals.output_pages,
            totals.buffer_hits,
            elapsed.as_secs_f64(),
            qps,
        );
        std::fs::write(&path, json).expect("write json report");
        eprintln!("wrote {path}");
    }
}
