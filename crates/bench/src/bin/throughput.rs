//! Closed-loop throughput benchmark for the concurrent session engine.
//!
//! Builds the paper's temporal/100 % database, wraps it in an
//! [`Engine`], and drives it with `--threads N` sessions, each running a
//! seeded closed loop of `--ops M` statements: keyed retrieves (the
//! engine's lock-free snapshot read path), periodic `replace` updates
//! (`--write-every K`, 0 = read-only), and periodic two-variable joins
//! (`--join-every J`, 0 = none) that exercise decomposition. Reports
//! queries/second, per-op latency percentiles (p50/p95/p99), the
//! per-kind op counts, the I/O totals aggregated from every
//! statement's own counters, and the commit-lock counters that prove
//! reads never touched the lock.
//!
//! `--durable 1` rebuilds the same workload on a WAL-backed in-memory
//! database with **group commit** on (`--gc-max-batch`,
//! `--gc-max-delay-ms`), and additionally reports `commits / fsyncs` —
//! the batching win of coalescing many sessions' commits into one log
//! sync.
//!
//! `--server ADDR` switches the driver to **wire mode**: instead of an
//! embedded engine it connects `--threads N` real TCP clients to a
//! live `tdbms-server`, loads the workload over the wire (`--setup-rows`
//! tuples per relation, batched appends), and runs the same closed
//! loop through the network protocol — so qps and the latency tail
//! include framing, syscalls, and the server's per-query guardrails.
//!
//! Worker errors do not kill the run: they are counted, reported in
//! the `throughput:` line (`errors=`), and the JSON artifact is still
//! written with whatever completed (partial results are results).
//!
//! The op mix is a pure function of `--seed`; at `--threads 1` the I/O
//! totals are too, while at higher thread counts the shared warm
//! buffers make them vary slightly with the interleaving (the ledger
//! consistency assertion holds regardless).
//!
//! `--json PATH` additionally writes the whole report as one JSON
//! object (the `BENCH_throughput.json` artifact CI records).
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use tdbms_bench::{build_database, populate_database, BenchConfig};
use tdbms_core::{
    CheckpointPolicy, Database, Engine, GroupCommitConfig, LockStats,
    PhaseIo,
};
use tdbms_kernel::{DatabaseClass, Prng};
use tdbms_net::Client;
use tdbms_storage::SharedMemDisk;
use tdbms_wal::SharedMemLog;

fn flag(name: &str, default: u64) -> u64 {
    let mut args = std::env::args();
    let eq = format!("--{name}=");
    while let Some(a) = args.next() {
        if a == format!("--{name}") {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                return n;
            }
        } else if let Some(n) =
            a.strip_prefix(&eq).and_then(|v| v.parse().ok())
        {
            return n;
        }
    }
    default
}

fn flag_str(name: &str) -> Option<String> {
    let mut args = std::env::args();
    let eq = format!("--{name}=");
    while let Some(a) = args.next() {
        if a == format!("--{name}") {
            return args.next();
        } else if let Some(v) = a.strip_prefix(&eq) {
            return Some(v.to_string());
        }
    }
    None
}

#[derive(Default)]
struct Totals {
    reads: u64,
    writes: u64,
    joins: u64,
    errors: u64,
    input_pages: u64,
    output_pages: u64,
    buffer_hits: u64,
    phases: Vec<PhaseIo>,
    /// Per-op wall-clock latencies in microseconds, unsorted.
    latencies_us: Vec<u64>,
}

impl Totals {
    fn absorb(&mut self, local: Totals) {
        self.reads += local.reads;
        self.writes += local.writes;
        self.joins += local.joins;
        self.errors += local.errors;
        self.input_pages += local.input_pages;
        self.output_pages += local.output_pages;
        self.buffer_hits += local.buffer_hits;
        self.latencies_us.extend(local.latencies_us);
        for p in local.phases {
            match self.phases.iter_mut().find(|q| q.name == p.name) {
                Some(q) => {
                    q.reads += p.reads;
                    q.writes += p.writes;
                    q.hits += p.hits;
                    q.evictions += p.evictions;
                }
                None => self.phases.push(p),
            }
        }
    }
}

/// `p` in [0, 100] over an unsorted sample; 0 for an empty one.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// The next statement of the seeded closed loop, with its kind tally.
fn next_stmt(
    rng: &mut Prng,
    op: u64,
    max_id: i64,
    join_every: u64,
    write_every: u64,
    local: &mut Totals,
) -> String {
    let id = rng.random_range(1i64..=max_id);
    if join_every > 0 && op.is_multiple_of(join_every) {
        local.joins += 1;
        format!(
            "retrieve (h.amount, i.seq) \
             where h.id = i.id and h.id = {id}"
        )
    } else if write_every > 0 && op.is_multiple_of(write_every) {
        local.writes += 1;
        format!("replace h (seq = h.seq + 1) where h.id = {id}")
    } else {
        local.reads += 1;
        format!("retrieve (h.amount) where h.id = {id}")
    }
}

fn main() {
    let threads = flag("threads", 1).max(1) as usize;
    let ops = flag("ops", 400);
    let write_every = flag("write-every", 8);
    let join_every = flag("join-every", 16);
    let seed = flag("seed", 0xbe9c);
    let durable = flag("durable", 0) == 1;
    let gc_max_batch = flag("gc-max-batch", 8) as u32;
    let gc_max_delay_ms = flag("gc-max-delay-ms", 2);
    let setup_rows = flag("setup-rows", 1024).clamp(1, 1 << 20);
    let json_path = flag_str("json");
    let server_addr = flag_str("server");

    let cfg = BenchConfig::new(DatabaseClass::Temporal, 100);
    let report = match server_addr {
        Some(addr) => run_server_mode(
            &addr,
            &cfg,
            threads,
            ops,
            write_every,
            join_every,
            seed,
            setup_rows,
        ),
        None => run_embedded_mode(
            &cfg,
            threads,
            ops,
            write_every,
            join_every,
            seed,
            durable,
            gc_max_batch,
            gc_max_delay_ms,
        ),
    };
    print_and_write(
        report,
        threads,
        ops,
        durable,
        gc_max_batch,
        gc_max_delay_ms,
        json_path,
    );
}

/// Everything both modes produce; `None` fields don't apply to the
/// mode that ran.
struct Report {
    mode: &'static str,
    done: u64,
    elapsed: Duration,
    totals: Totals,
    locks: Option<LockStats>,
    group: Option<(u64, u64)>,
    /// Statement-cache `(hits, misses)` of the engine that served the
    /// run — fetched over the wire in server mode.
    plan_cache: Option<(u64, u64)>,
}

#[allow(clippy::too_many_arguments)]
fn run_embedded_mode(
    cfg: &BenchConfig,
    threads: usize,
    ops: u64,
    write_every: u64,
    join_every: u64,
    seed: u64,
    durable: bool,
    gc_max_batch: u32,
    gc_max_delay_ms: u64,
) -> Report {
    let mut db = if durable {
        // The same workload over a WAL-backed in-memory database:
        // every mutating statement is a durable transaction, and group
        // commit batches the sessions' log fsyncs. The checkpoint
        // policy is deliberately sparse so there is something left to
        // batch between checkpoints.
        let mut db = Database::open_durable_on(
            Box::new(SharedMemDisk::new()),
            Box::new(SharedMemLog::new()),
            None,
        )
        .expect("durable open on fresh in-memory storage");
        db.set_checkpoint_policy(CheckpointPolicy::EveryN(256));
        populate_database(&mut db, cfg);
        db.enable_group_commit(GroupCommitConfig {
            max_batch: gc_max_batch.max(1),
            max_delay: Duration::from_millis(gc_max_delay_ms),
        })
        .expect("database is durable");
        db
    } else {
        build_database(cfg)
    };
    // Throughput mode: warm, shared buffers (the paper's cold-statement
    // methodology is for per-query page counts, not sustained load).
    db.set_cold_statements(false);
    db.set_default_buffer_frames(8);
    for rel in [cfg.rel_h(), cfg.rel_i()] {
        db.set_buffer_frames(&rel, 8).expect("relation exists");
    }
    let engine = Engine::new(db);

    let rel_h = cfg.rel_h();
    let rel_i = cfg.rel_i();
    let completed = AtomicU64::new(0);
    let totals = Mutex::new(Totals::default());
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let engine = engine.clone();
            let (rel_h, rel_i) = (rel_h.clone(), rel_i.clone());
            let (completed, totals) = (&completed, &totals);
            s.spawn(move || {
                let mut rng = Prng::seed_from_u64(seed ^ (t as u64) << 32);
                let mut session = engine.session();
                let mut local = Totals::default();
                if session
                    .execute(&format!(
                        "range of h is {rel_h}\nrange of i is {rel_i}"
                    ))
                    .is_err()
                {
                    // Without range variables every op would fail;
                    // count the whole quota as errors and bail.
                    local.errors += ops;
                    totals.lock().expect("unpoisoned").absorb(local);
                    return;
                }
                for op in 1..=ops {
                    let stmt = next_stmt(
                        &mut rng,
                        op,
                        1024,
                        join_every,
                        write_every,
                        &mut local,
                    );
                    let t0 = Instant::now();
                    match session.execute(&stmt) {
                        Ok(out) => {
                            local
                                .latencies_us
                                .push(t0.elapsed().as_micros() as u64);
                            local.input_pages += out.stats.input_pages;
                            local.output_pages += out.stats.output_pages;
                            local.buffer_hits += out.stats.buffer_hits;
                            for p in &out.stats.phases {
                                match local
                                    .phases
                                    .iter_mut()
                                    .find(|q| q.name == p.name)
                                {
                                    Some(q) => {
                                        q.reads += p.reads;
                                        q.writes += p.writes;
                                        q.hits += p.hits;
                                        q.evictions += p.evictions;
                                    }
                                    None => local.phases.push(p.clone()),
                                }
                            }
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            // Keep going: a failed op is a data point,
                            // not a reason to lose the whole report.
                            local.errors += 1;
                            eprintln!("worker {t} op failed: {e}");
                        }
                    }
                }
                totals.lock().expect("unpoisoned").absorb(local);
            });
        }
    });
    let elapsed = start.elapsed();
    let done = completed.load(Ordering::Relaxed);
    let totals = totals.into_inner().expect("unpoisoned");

    // Capture the proof counters before the final consistency check —
    // that check itself takes one shared lock.
    let locks = engine.lock_stats();
    let group = engine.group_commit_stats();
    let plan_cache = engine.plan_cache_stats();

    // Accounting must have survived the contention.
    engine.with_read(|db| assert!(db.io_stats().is_consistent()));

    Report {
        mode: "embedded",
        done,
        elapsed,
        totals,
        locks: Some(locks),
        group,
        plan_cache: Some(plan_cache),
    }
}

/// Load the benchmark schema and rows through the wire. Idempotent:
/// if the relations already exist (a previous run against the same
/// server), population is skipped.
fn setup_over_wire(
    c: &mut Client,
    cfg: &BenchConfig,
    setup_rows: u64,
    seed: u64,
) {
    let mut rng = Prng::seed_from_u64(seed);
    for (rel, method) in [(cfg.rel_h(), "hash"), (cfg.rel_i(), "isam")] {
        let created = c.query(&format!(
            "create temporal interval {rel} \
             (id = i4, amount = i4, seq = i4, string = c96)"
        ));
        if created.is_err() {
            // Already loaded by a previous driver run; reuse it.
            continue;
        }
        // Batched appends: one request per 64 statements keeps the
        // round-trip count (and wire overhead) sane during setup.
        let mut batch = String::new();
        let mut in_batch = 0;
        for id in 1..=setup_rows {
            let amount = rng.random_range(0i64..1000) * 100;
            let string: String = (0..12)
                .map(|_| rng.random_range(b'a'..=b'z') as char)
                .collect();
            batch.push_str(&format!(
                "append to {rel} (id = {id}, amount = {amount}, \
                 seq = 0, string = \"{string}\")\n"
            ));
            in_batch += 1;
            if in_batch == 64 {
                c.query(&batch).expect("setup append batch");
                batch.clear();
                in_batch = 0;
            }
        }
        if in_batch > 0 {
            c.query(&batch).expect("setup append batch");
        }
        c.query(&format!(
            "modify {rel} to {method} on id where fillfactor = {}",
            cfg.fillfactor
        ))
        .expect("modify benchmark relation");
    }
}

#[allow(clippy::too_many_arguments)]
fn run_server_mode(
    addr: &str,
    cfg: &BenchConfig,
    threads: usize,
    ops: u64,
    write_every: u64,
    join_every: u64,
    seed: u64,
    setup_rows: u64,
) -> Report {
    let mut setup = Client::connect(addr).unwrap_or_else(|e| {
        panic!("cannot connect to tdbms-server at {addr}: {e}")
    });
    setup.ping().expect("server answers ping");
    setup_over_wire(&mut setup, cfg, setup_rows, seed);
    drop(setup);

    let rel_h = cfg.rel_h();
    let rel_i = cfg.rel_i();
    let completed = AtomicU64::new(0);
    let totals = Mutex::new(Totals::default());
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let (rel_h, rel_i) = (rel_h.clone(), rel_i.clone());
            let (completed, totals) = (&completed, &totals);
            s.spawn(move || {
                let mut rng = Prng::seed_from_u64(seed ^ (t as u64) << 32);
                let mut local = Totals::default();
                let mut client = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("worker {t}: connect failed: {e}");
                        local.errors += ops;
                        totals.lock().expect("unpoisoned").absorb(local);
                        return;
                    }
                };
                if client
                    .query(&format!(
                        "range of h is {rel_h}\nrange of i is {rel_i}"
                    ))
                    .is_err()
                {
                    local.errors += ops;
                    totals.lock().expect("unpoisoned").absorb(local);
                    return;
                }
                for op in 1..=ops {
                    let stmt = next_stmt(
                        &mut rng,
                        op,
                        setup_rows as i64,
                        join_every,
                        write_every,
                        &mut local,
                    );
                    let t0 = Instant::now();
                    match client.query(&stmt) {
                        Ok(reply) => {
                            local
                                .latencies_us
                                .push(t0.elapsed().as_micros() as u64);
                            local.input_pages += reply.input_pages;
                            local.output_pages += reply.output_pages;
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            local.errors += 1;
                            eprintln!("worker {t} op failed: {e}");
                        }
                    }
                }
                totals.lock().expect("unpoisoned").absorb(local);
            });
        }
    });
    let elapsed = start.elapsed();
    // The counters live in the server process; fetch them over the
    // wire so the report carries the same proof lines as embedded mode.
    let (locks, plan_cache) =
        match Client::connect(addr).and_then(|mut c| c.stats()) {
            Ok(s) => (
                Some(LockStats {
                    shared: s.shared,
                    exclusive: s.exclusive,
                    snapshot_reads: s.snapshot_reads,
                }),
                Some((s.plan_hits, s.plan_misses)),
            ),
            Err(e) => {
                eprintln!("stats fetch failed: {e}");
                (None, None)
            }
        };
    Report {
        mode: "server",
        done: completed.load(Ordering::Relaxed),
        elapsed,
        totals: totals.into_inner().expect("unpoisoned"),
        locks,
        group: None,
        plan_cache,
    }
}

fn print_and_write(
    report: Report,
    threads: usize,
    ops: u64,
    durable: bool,
    gc_max_batch: u32,
    gc_max_delay_ms: u64,
    json_path: Option<String>,
) {
    let Report {
        mode,
        done,
        elapsed,
        mut totals,
        locks,
        group,
        plan_cache,
    } = report;

    println!(
        "throughput: threads={threads} ops/thread={ops} total={done} \
         (reads={} writes={} joins={} errors={})",
        totals.reads, totals.writes, totals.joins, totals.errors
    );
    println!(
        "io: input_pages={} output_pages={} buffer_hits={}",
        totals.input_pages, totals.output_pages, totals.buffer_hits
    );
    totals.phases.sort_by(|a, b| a.name.cmp(&b.name));
    for p in &totals.phases {
        println!(
            "phase {}: reads={} writes={} hits={}",
            p.name, p.reads, p.writes, p.hits
        );
    }
    // The lock-free-read proof: every retrieve in the mix is snapshot-
    // eligible (the relations are temporal), so the commit lock is
    // taken only by writers. (Embedded mode only; over the wire the
    // counters live in the server process.)
    if let Some(locks) = locks {
        println!(
            "locks: shared={} exclusive={} snapshot_reads={}",
            locks.shared, locks.exclusive, locks.snapshot_reads
        );
    }
    if let Some((hits, misses)) = plan_cache {
        println!(
            "plan-cache: hits={hits} misses={misses} hit-rate={:.1}%",
            100.0 * hits as f64 / ((hits + misses).max(1)) as f64
        );
    }
    if let Some((commits, fsyncs)) = group {
        println!(
            "group-commit: commits={commits} fsyncs={fsyncs} \
             commits_per_fsync={:.2}",
            commits as f64 / (fsyncs.max(1)) as f64
        );
    }

    totals.latencies_us.sort_unstable();
    let (p50, p95, p99) = (
        percentile(&totals.latencies_us, 50.0),
        percentile(&totals.latencies_us, 95.0),
        percentile(&totals.latencies_us, 99.0),
    );
    println!("latency_us: p50={p50} p95={p95} p99={p99}");

    let qps = done as f64 / elapsed.as_secs_f64().max(1e-9);
    println!("elapsed={:.3}s qps={:.0}", elapsed.as_secs_f64(), qps);

    let Some(path) = json_path else { return };
    let locks_json = match locks {
        Some(l) => format!(
            "{{\"shared\": {}, \"exclusive\": {}, \
             \"snapshot_reads\": {}}}",
            l.shared, l.exclusive, l.snapshot_reads
        ),
        None => "null".to_string(),
    };
    let plan_cache_json = match plan_cache {
        Some((hits, misses)) => format!(
            "{{\"hits\": {hits}, \"misses\": {misses}, \
             \"hit_rate\": {:.4}}}",
            hits as f64 / ((hits + misses).max(1)) as f64
        ),
        None => "null".to_string(),
    };
    let group_json = match group {
        Some((commits, fsyncs)) => format!(
            "{{\"max_batch\": {gc_max_batch}, \
             \"max_delay_ms\": {gc_max_delay_ms}, \
             \"commits\": {commits}, \"fsyncs\": {fsyncs}, \
             \"commits_per_fsync\": {:.4}}}",
            commits as f64 / (fsyncs.max(1)) as f64
        ),
        None => "null".to_string(),
    };
    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"mode\": \"{mode}\",\n  \
         \"threads\": {threads},\n  \"ops_per_thread\": {ops},\n  \
         \"total_ops\": {done},\n  \"reads\": {},\n  \
         \"writes\": {},\n  \"joins\": {},\n  \"errors\": {},\n  \
         \"durable\": {durable},\n  \
         \"locks\": {locks_json},\n  \
         \"plan_cache\": {plan_cache_json},\n  \
         \"group_commit\": {group_json},\n  \
         \"io\": {{\"input_pages\": {}, \"output_pages\": {}, \
         \"buffer_hits\": {}}},\n  \
         \"latency_us\": {{\"p50\": {p50}, \"p95\": {p95}, \
         \"p99\": {p99}}},\n  \
         \"elapsed_secs\": {:.6},\n  \"qps\": {:.1}\n}}\n",
        totals.reads,
        totals.writes,
        totals.joins,
        totals.errors,
        totals.input_pages,
        totals.output_pages,
        totals.buffer_hits,
        elapsed.as_secs_f64(),
        qps,
    );
    // Partial results are results: this write happens even when every
    // op errored, so CI always has a valid artifact to record.
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}
