//! Regenerate Figure 7: input pages for the four database types at update
//! counts 0 and 14.
use tdbms_bench::{figures, max_uc_from_env, run_sweep, BenchConfig};

fn main() {
    let max_uc = max_uc_from_env(14);
    let sweeps: Vec<_> = BenchConfig::all()
        .into_iter()
        .map(|cfg| run_sweep(cfg, max_uc).0)
        .collect();
    let refs: Vec<&_> = sweeps.iter().collect();
    print!("{}", figures::fig7(&refs));
}
