//! Scale stress driver: grow one keyed rollback relation far past the
//! paper's 1024 tuples, evolve it with a skewed (or `--bursty`) update
//! stream, and compare keyed at-now probe costs with background
//! reorganization off and on.
//!
//! The headline invariants, checked on every run:
//!
//! - `bounded-io`: with reorganization after every round, the hot key's
//!   at-now probe cost stays within one page of the freshly-loaded
//!   baseline, however many updates land on its chain.
//! - `reorg-helps`: the reorganized probe never costs more than the
//!   unreorganized one.
//! - `cold-flat`: the never-updated key's probe cost does not move in
//!   either mode.
//! - `migration`: the reorganized run actually migrated versions, and
//!   time-travel still sees every one of them.
//! - `daemon-live`: the *background* daemon (not the synchronous pass)
//!   compacts a live engine while a session commits updates.
//!
//! `--audit` additionally runs the tdbms-check scrub over the final
//! reorganized database. A JSON summary is written to `BENCH_scale.json`
//! (override with `--json PATH`); failure to write it is itself a
//! failed invariant (`artifact-written`).

use tdbms_bench::{
    build_scale_database, evolve_scale_round, run_scale_sweep, ScaleConfig,
    ScaleSweepData, SCALE_REL,
};
use tdbms_core::Engine;
use tdbms_kernel::{Granularity, Prng, TimeVal};

fn flag(name: &str, default: u64) -> u64 {
    let mut args = std::env::args();
    let eq = format!("--{name}=");
    while let Some(a) = args.next() {
        if a == format!("--{name}") {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                return n;
            }
        } else if let Some(n) =
            a.strip_prefix(&eq).and_then(|v| v.parse().ok())
        {
            return n;
        }
    }
    default
}

fn flag_str(name: &str) -> Option<String> {
    let mut args = std::env::args();
    let eq = format!("--{name}=");
    while let Some(a) = args.next() {
        if a == format!("--{name}") {
            return args.next();
        } else if let Some(v) = a.strip_prefix(&eq) {
            return Some(v.to_string());
        }
    }
    None
}

fn fail(invariant: &str, detail: String) -> ! {
    eprintln!("invariant {invariant} violated: {detail}");
    std::process::exit(1);
}

fn print_table(label: &str, data: &ScaleSweepData) {
    println!("{label} (reorg per round: {})", data.reorg);
    println!(
        "  {:>5} {:>9} {:>10} {:>13} {:>12} {:>9}",
        "round",
        "hot I/O",
        "cold I/O",
        "primary pages",
        "history rows",
        "migrated"
    );
    for (i, r) in data.rounds.iter().enumerate() {
        println!(
            "  {:>5} {:>9} {:>10} {:>13} {:>12} {:>9}",
            i,
            r.hot_pages,
            r.cold_pages,
            r.primary_pages,
            r.history_rows,
            r.migrated
        );
    }
}

/// Exercise the real background daemon: a live engine, a session
/// committing one round of updates, the compactor racing it on its own
/// interval. Returns versions migrated by the daemon.
fn daemon_round(cfg: &ScaleConfig) -> u64 {
    let engine = Engine::new(build_scale_database(cfg));
    let daemon =
        engine.spawn_reorg_daemon(std::time::Duration::from_millis(2));
    let mut session = engine.session();
    session
        .execute(&format!("range of s is {SCALE_REL}"))
        .unwrap();
    let mut rng = Prng::seed_from_u64(cfg.seed);
    evolve_scale_round(cfg, &mut rng, |stmt| {
        session.execute(stmt).expect("daemon-phase update");
    });
    // The stream is done; give the daemon a bounded window to catch up.
    let deadline =
        std::time::Instant::now() + std::time::Duration::from_secs(10);
    while daemon.migrated() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let migrated = daemon.migrated();
    daemon.stop();
    // Whatever the daemon moved, no committed version may be lost.
    let all = session
        .execute(&format!(
            "retrieve (s.seq) as of \"{}\" through \"now\"",
            TimeVal::BEGINNING.format(Granularity::Second)
        ))
        .unwrap();
    let expect = cfg.scale + cfg.updates_per_round;
    if all.rows().len() as u64 != expect {
        fail(
            "daemon-live",
            format!(
                "time-travel sees {} versions, {expect} were committed",
                all.rows().len()
            ),
        );
    }
    engine.with_read(|db| {
        if !db.io_stats().is_consistent() {
            fail(
                "daemon-live",
                "I/O accounting inconsistent after daemon run".into(),
            );
        }
    });
    migrated
}

fn main() {
    let scale = flag("scale", 100_000);
    let rounds = flag("rounds", 4) as u32;
    let mut cfg = ScaleConfig::new(scale);
    cfg.seed = flag("seed", cfg.seed);
    cfg.bursty = std::env::args().any(|a| a == "--bursty");
    let audit = std::env::args().any(|a| a == "--audit");
    let skip_daemon = std::env::args().any(|a| a == "--no-daemon");

    println!(
        "scale workload: {} keys, {} rounds x {} updates, hot set {} \
         ({}%){}",
        cfg.scale,
        rounds,
        cfg.updates_per_round,
        cfg.hot_keys,
        cfg.hot_pct,
        if cfg.bursty { ", bursty" } else { "" }
    );

    let (without, _) = run_scale_sweep(&cfg, rounds, false);
    let (with, mut db) = run_scale_sweep(&cfg, rounds, true);
    print_table("baseline", &without);
    print_table("reorganized", &with);

    // bounded-io: the reorganized hot probe stays at the loaded-state
    // baseline (one page of slack for the in-flight current version).
    let baseline = with.rounds[0].hot_pages;
    if with.hot_final() > baseline + 1 {
        fail(
            "bounded-io",
            format!(
                "reorganized hot probe grew {baseline} -> {} pages",
                with.hot_final()
            ),
        );
    }
    if with.hot_final() > without.hot_final() {
        fail(
            "reorg-helps",
            format!(
                "reorganized probe ({}) costs more than unreorganized \
                 ({})",
                with.hot_final(),
                without.hot_final()
            ),
        );
    }
    for data in [&without, &with] {
        if data
            .rounds
            .iter()
            .any(|r| r.cold_pages != data.rounds[0].cold_pages)
        {
            fail(
                "cold-flat",
                format!(
                    "never-updated key's probe cost moved: {:?}",
                    data.rounds
                ),
            );
        }
    }
    if with.migrated_total() == 0 {
        fail("migration", "reorganization pass moved nothing".into());
    }
    // Time travel over the reorganized database still sees every
    // committed version: scale originals + one per update.
    let all = db
        .execute(&format!(
            "retrieve (s.seq) as of \"{}\" through \"now\"",
            TimeVal::BEGINNING.format(Granularity::Second)
        ))
        .unwrap();
    let expect = cfg.scale + u64::from(rounds) * cfg.updates_per_round;
    if all.rows().len() as u64 != expect {
        fail(
            "migration",
            format!(
                "time-travel sees {} versions, {expect} were committed",
                all.rows().len()
            ),
        );
    }

    let daemon_migrated = if skip_daemon {
        println!("daemon phase skipped (--no-daemon)");
        0
    } else {
        let m = daemon_round(&cfg);
        if m == 0 {
            fail(
                "daemon-live",
                "background daemon migrated nothing in 10s".into(),
            );
        }
        println!("daemon phase: {m} versions migrated in background");
        m
    };

    if audit {
        let (pager, catalog, _) = db.internals();
        let report = tdbms_check::check_database(pager, catalog)
            .unwrap_or_else(|e| {
                fail("audit-clean", format!("check failed to run: {e}"))
            });
        print!("{}", report.render());
        if !report.is_clean() {
            fail(
                "audit-clean",
                "tdbms-check found errors after reorganization".into(),
            );
        }
    }

    let path =
        flag_str("json").unwrap_or_else(|| "BENCH_scale.json".to_string());
    let json = format!(
        "{{\n  \"scale\": {},\n  \"rounds\": {},\n  \
         \"updates_per_round\": {},\n  \"bursty\": {},\n  \
         \"hot_pages_baseline\": {},\n  \"hot_pages_no_reorg\": {},\n  \
         \"hot_pages_reorg\": {},\n  \"cold_pages\": {},\n  \
         \"migrated\": {},\n  \"daemon_migrated\": {},\n  \
         \"history_rows\": {},\n  \"primary_pages_no_reorg\": {},\n  \
         \"primary_pages_reorg\": {}\n}}\n",
        cfg.scale,
        rounds,
        cfg.updates_per_round,
        cfg.bursty,
        baseline,
        without.hot_final(),
        with.hot_final(),
        with.cold_final(),
        with.migrated_total(),
        daemon_migrated,
        with.rounds.last().map(|r| r.history_rows).unwrap_or(0),
        without.rounds.last().map(|r| r.primary_pages).unwrap_or(0),
        with.rounds.last().map(|r| r.primary_pages).unwrap_or(0),
    );
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => {
            eprintln!(
                "invariant artifact-written violated: scale run \
                 completed but its JSON evidence is lost \
                 (cannot write {path}: {e})"
            );
            std::process::exit(2);
        }
    }
    println!(
        "scale invariants hold: bounded-io reorg-helps cold-flat \
         migration{}{}",
        if skip_daemon { "" } else { " daemon-live" },
        if audit { " audit-clean" } else { "" }
    );
}
