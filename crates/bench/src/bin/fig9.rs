//! Regenerate Figure 9: fixed costs, variable costs, and growth rates for
//! the rollback and temporal databases at both loading factors (the
//! historical database shows the rollback database's variable costs and
//! growth rates, as the paper notes).
use tdbms_bench::{figures, max_uc_from_env, run_sweep, BenchConfig};
use tdbms_kernel::DatabaseClass;

fn main() {
    let max_uc = max_uc_from_env(14);
    let sweeps: Vec<_> = [
        BenchConfig::new(DatabaseClass::Rollback, 100),
        BenchConfig::new(DatabaseClass::Rollback, 50),
        BenchConfig::new(DatabaseClass::Temporal, 100),
        BenchConfig::new(DatabaseClass::Temporal, 50),
    ]
    .into_iter()
    .map(|cfg| run_sweep(cfg, max_uc).0)
    .collect();
    let refs: Vec<&_> = sweeps.iter().collect();
    print!("{}", figures::fig9(&refs));
}
