//! Regenerate every figure of the paper in one run (sweeps are shared
//! across figures). Set TDBMS_MAX_UC to trade runtime for sweep depth.
use tdbms_bench::{
    figures, max_uc_from_env, measure_improvements, nonuniform_experiment,
    run_sweep, BenchConfig,
};
use tdbms_kernel::DatabaseClass;

fn main() {
    let max_uc = max_uc_from_env(15);
    eprintln!("running the eight update-count sweeps (to UC {max_uc})...");
    let mut sweeps = Vec::new();
    let mut temporal_db = None;
    for cfg in BenchConfig::all() {
        let (data, db) = run_sweep(cfg, max_uc);
        if cfg.class == DatabaseClass::Temporal && cfg.fillfactor == 100 {
            temporal_db = Some(db);
        }
        sweeps.push(data);
    }
    let refs: Vec<&_> = sweeps.iter().collect();

    println!("{}", figures::fig5(&refs));
    let t100 = refs
        .iter()
        .find(|d| {
            d.cfg.class == DatabaseClass::Temporal
                && d.cfg.fillfactor == 100
        })
        .unwrap();
    let r50 = refs
        .iter()
        .find(|d| {
            d.cfg.class == DatabaseClass::Rollback && d.cfg.fillfactor == 50
        })
        .unwrap();
    println!("{}", figures::fig6(t100));
    println!("{}", figures::fig7(&refs));
    println!(
        "{}",
        figures::fig8(t100, &["Q10", "Q09", "Q11", "Q03", "Q12", "Q01"])
    );
    println!("{}", figures::fig8(r50, &["Q10", "Q09", "Q03", "Q01"]));
    let f9: Vec<&_> = refs
        .iter()
        .copied()
        .filter(|d| {
            matches!(
                d.cfg.class,
                DatabaseClass::Rollback | DatabaseClass::Temporal
            )
        })
        .collect();
    println!("{}", figures::fig9(&f9));

    eprintln!("measuring the Figure 10 improvements...");
    let mut db = temporal_db.expect("temporal sweep ran");
    let rows = measure_improvements(&mut db, t100);
    println!("{}", figures::fig10(&rows, max_uc));

    eprintln!("running the non-uniform-distribution experiment...");
    let rows = nonuniform_experiment(max_uc_from_env(15).min(4));
    println!("{}", figures::nonuniform_table(&rows));
}
