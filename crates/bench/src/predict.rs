//! Planner-prediction analysis: estimated vs measured page I/O.
//!
//! The planner's job is choosing between access paths, so its cost
//! model does not have to predict absolute page counts exactly — it
//! has to *rank* correctly: wherever the measured cost of a query
//! grows across update counts, the estimate must not shrink, or the
//! planner would start preferring the wrong plan exactly when the
//! workload degrades. `ranking_violations` checks that ordering for
//! every query of every configuration; `fig5 --predict` fails on any
//! violation and records the full table as `BENCH_planner.json`.

use crate::queries::QUERY_IDS;
use crate::sweep::SweepData;
use std::fmt::Write as _;

/// Every pair of update counts where the measured input cost strictly
/// grew but the planner's estimate strictly shrank (or vice versa) —
/// i.e. the estimate mis-ranks the growth the paper's figures show.
pub fn ranking_violations(sweeps: &[&SweepData]) -> Vec<String> {
    let mut violations = Vec::new();
    for d in sweeps {
        let cfg = format!("{} ({}%)", d.cfg.class, d.cfg.fillfactor);
        for q in QUERY_IDS {
            let (Some(costs), Some(ests)) = (d.costs.get(q), d.est.get(q))
            else {
                continue;
            };
            for i in 0..costs.len() {
                for j in (i + 1)..costs.len() {
                    let (mi, mj) = (costs[i].input, costs[j].input);
                    let (ei, ej) = (ests[i].0, ests[j].0);
                    let inverted =
                        (mi < mj && ei > ej) || (mi > mj && ei < ej);
                    if inverted {
                        violations.push(format!(
                            "{cfg} {q}: measured {mi}->{mj} but \
                             estimated {ei}->{ej} (uc {i}->{j})"
                        ));
                    }
                }
            }
        }
    }
    violations
}

/// Human-readable estimate-vs-measured table, one block per
/// configuration. `est/meas` pairs, one column per update count.
pub fn predict_report(sweeps: &[&SweepData]) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "Planner predictions: estimated/measured input pages per \
         update count"
    )
    .unwrap();
    for d in sweeps {
        writeln!(
            s,
            "-- {} database, {} % loading",
            d.cfg.class, d.cfg.fillfactor
        )
        .unwrap();
        write!(s, "{:<6}", "Query").unwrap();
        for uc in 0..=d.max_uc {
            write!(s, "{:>14}", format!("uc={uc}")).unwrap();
        }
        writeln!(s).unwrap();
        for q in QUERY_IDS {
            let (Some(costs), Some(ests)) = (d.costs.get(q), d.est.get(q))
            else {
                continue;
            };
            write!(s, "{q:<6}").unwrap();
            for (c, e) in costs.iter().zip(ests) {
                write!(s, "{:>14}", format!("{}/{}", e.0, c.input))
                    .unwrap();
            }
            writeln!(s).unwrap();
        }
    }
    s
}

/// The `BENCH_planner.json` artifact: per configuration and query, the
/// measured and estimated input-page series, plus every ranking
/// violation found (an empty list is the pass condition).
pub fn predict_json(
    sweeps: &[&SweepData],
    violations: &[String],
) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"planner\",\n  \"configs\": [\n");
    for (di, d) in sweeps.iter().enumerate() {
        write!(
            s,
            "    {{\"class\": \"{}\", \"fillfactor\": {}, \
             \"max_uc\": {}, \"queries\": {{",
            d.cfg.class, d.cfg.fillfactor, d.max_uc
        )
        .unwrap();
        let mut first = true;
        for q in QUERY_IDS {
            let (Some(costs), Some(ests)) = (d.costs.get(q), d.est.get(q))
            else {
                continue;
            };
            if !first {
                s.push_str(", ");
            }
            first = false;
            let meas: Vec<String> =
                costs.iter().map(|c| c.input.to_string()).collect();
            let est: Vec<String> =
                ests.iter().map(|e| e.0.to_string()).collect();
            write!(
                s,
                "\"{q}\": {{\"measured\": [{}], \"estimated\": [{}]}}",
                meas.join(", "),
                est.join(", ")
            )
            .unwrap();
        }
        s.push_str("}}");
        if di + 1 < sweeps.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ],\n  \"ranking_violations\": [");
    let quoted: Vec<String> = violations
        .iter()
        .map(|v| format!("\"{}\"", v.replace('"', "'")))
        .collect();
    s.push_str(&quoted.join(", "));
    s.push_str("]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::run_sweep;
    use crate::workload::BenchConfig;
    use tdbms_kernel::DatabaseClass;

    #[test]
    fn temporal_sweep_estimates_rank_correctly() {
        let cfg = BenchConfig::new(DatabaseClass::Temporal, 100);
        let (data, _) = run_sweep(cfg, 2);
        let v = ranking_violations(&[&data]);
        assert!(v.is_empty(), "ranking violations: {v:?}");
        // The keyed probe estimate tracks the measured chain exactly
        // at this scale.
        assert_eq!(data.est_input("Q01", 0), Some(1));
        assert_eq!(data.est_input("Q01", 2), Some(5));
        // And the report/JSON render without panicking.
        let report = predict_report(&[&data]);
        assert!(report.contains("Q01"));
        let json = predict_json(&[&data], &v);
        assert!(json.contains("\"ranking_violations\": []"));
    }
}
