//! Measured reproduction of Figure 10 ("Improvements for the Temporal
//! Database") and of the §5.4 non-uniform-distribution experiment.
//!
//! Where the paper *estimated* the two-level store and secondary-index
//! costs, we build the structures with `tdbms-twostore` and measure real
//! page accesses.

use crate::sweep::SweepData;
use crate::workload::{all_rows, AMOUNT_H, AMOUNT_I, PROBE_ID};
use std::cmp::Ordering;
use tdbms_core::Database;
use tdbms_kernel::{RowCodec, Schema};
use tdbms_storage::{AccessMethod, HashFn, KeySpec, Pager, RelFile};
use tdbms_twostore::{
    is_current_row, HistoryLayout, IndexStructure, SecondaryIndex,
    TwoLevelStore,
};

/// One row of the Figure 10 table. `None` renders as the paper's `-`
/// ("same as the left adjacent column" / not applicable).
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig10Row {
    /// "Q01" … "Q12".
    pub query: &'static str,
    /// Conventional structure at update count 0.
    pub conv_uc0: Option<u64>,
    /// Conventional structure at the sweep's final update count.
    pub conv_ucn: Option<u64>,
    /// Simple two-level store.
    pub simple: Option<u64>,
    /// Two-level store with clustered history.
    pub clustered: Option<u64>,
    /// 1-level secondary index on `amount`, heap-structured.
    pub l1_heap: Option<u64>,
    /// 1-level secondary index, hash-structured.
    pub l1_hash: Option<u64>,
    /// 2-level (current-only) index, heap-structured.
    pub l2_heap: Option<u64>,
    /// 2-level index, hash-structured.
    pub l2_hash: Option<u64>,
}

struct Rel {
    schema: Schema,
    codec: RowCodec,
    file: RelFile,
    rows: Vec<Vec<u8>>,
}

fn load_rel(db: &mut Database, name: &str) -> Rel {
    let rows = all_rows(db, name);
    let (pager, catalog, _) = db.internals();
    let _ = pager;
    let id = catalog.require(name).expect("relation");
    let r = catalog.get(id);
    Rel {
        schema: r.schema.clone(),
        codec: r.codec.clone(),
        file: r.file.clone(),
        rows,
    }
}

/// Run `op` against cold buffers and return the pages it read.
fn cost_of(pager: &Pager, mut op: impl FnMut(&Pager)) -> u64 {
    pager.invalidate_buffers().expect("invalidate");
    pager.reset_stats();
    op(pager);
    pager.stats().total_reads()
}

/// Scan a keyed file counting rows whose `attr` equals `value` and which
/// are current versions (the conventional Q07/Q08 work, restaged for a
/// primary store).
fn scan_filter(
    pager: &Pager,
    file: &RelFile,
    attr: &KeySpec,
    value: i32,
) -> usize {
    let mut n = 0;
    let mut cur = file.scan();
    while let Some((_, row)) = cur.next(pager, file).expect("scan") {
        let got = i32::from_le_bytes(
            attr.extract(&row).try_into().expect("4-byte attr"),
        );
        if got == value {
            n += 1;
        }
    }
    n
}

/// Build the Figure 10 table for a temporal database that has been evolved
/// to `sweep.max_uc` (pass the sweep and the evolved database returned by
/// [`crate::sweep::run_sweep`]).
pub fn measure_improvements(
    db: &mut Database,
    sweep: &SweepData,
) -> Vec<Fig10Row> {
    let h = load_rel(db, &sweep.cfg.rel_h());
    let i = load_rel(db, &sweep.cfg.rel_i());
    let (pager, _, _) = db.internals();

    // Two-level stores, simple and clustered history, hash/ISAM primaries
    // mirroring the conventional organizations.
    let key_attr = 0usize;
    let build = |pager: &Pager, rel: &Rel, method, layout| {
        TwoLevelStore::build_from_rows(
            pager,
            &rel.schema,
            &rel.rows,
            key_attr,
            method,
            100,
            HashFn::Mod,
            layout,
        )
        .expect("two-level build")
    };
    let h_simple =
        build(pager, &h, AccessMethod::Hash, HistoryLayout::Simple);
    let h_clustered =
        build(pager, &h, AccessMethod::Hash, HistoryLayout::Clustered);
    let i_simple =
        build(pager, &i, AccessMethod::Isam, HistoryLayout::Simple);
    let i_clustered =
        build(pager, &i, AccessMethod::Isam, HistoryLayout::Clustered);

    // Secondary indexes on `amount` (attribute 1).
    let h_amount = KeySpec::for_attr(&h.codec, 1);
    let conv_idx = |pager: &Pager, structure| {
        SecondaryIndex::build(
            pager,
            &h.file,
            h_amount,
            structure,
            100,
            |_| true,
        )
        .expect("1-level index")
    };
    let l1_heap = conv_idx(pager, IndexStructure::Heap);
    let l1_hash = conv_idx(pager, IndexStructure::Hash);
    let cur_idx = |pager: &Pager, structure| {
        SecondaryIndex::build(
            pager,
            h_simple.primary(),
            h_amount,
            structure,
            100,
            |_| true, // the primary store holds only current versions
        )
        .expect("2-level index")
    };
    let l2_heap = cur_idx(pager, IndexStructure::Heap);
    let l2_hash = cur_idx(pager, IndexStructure::Hash);

    let probe = (PROBE_ID as i32).to_le_bytes();

    // --- measured improvement cells --------------------------------------
    let q01_clustered = cost_of(pager, |p| {
        let v = h_clustered.versions_for_key(p, &probe).expect("Q01");
        assert!(!v.is_empty());
    });
    let q02_clustered = cost_of(pager, |p| {
        let v = i_clustered.versions_for_key(p, &probe).expect("Q02");
        assert!(!v.is_empty());
    });
    let q05_simple = cost_of(pager, |p| {
        h_simple
            .current_for_key(p, &probe)
            .expect("Q05")
            .expect("found");
    });
    let q06_simple = cost_of(pager, |p| {
        i_simple
            .current_for_key(p, &probe)
            .expect("Q06")
            .expect("found");
    });
    let q07_simple = cost_of(pager, |p| {
        assert_eq!(
            scan_filter(p, h_simple.primary(), &h_amount, AMOUNT_H as i32),
            1
        );
    });
    let i_amount = KeySpec::for_attr(&i.codec, 1);
    let q08_simple = cost_of(pager, |p| {
        assert_eq!(
            scan_filter(p, i_simple.primary(), &i_amount, AMOUNT_I as i32),
            1
        );
    });

    // Q09/Q10: joins of current versions over the primary stores (scan one
    // side, keyed-probe the other per tuple — the conventional plan with
    // history out of the way).
    let q09_simple = cost_of(pager, |p| {
        let mut cur = i_simple.primary().scan();
        while let Some((_, row)) =
            cur.next(p, i_simple.primary()).expect("scan")
        {
            let amount = i_amount.extract(&row).to_vec();
            if let Some(mut probe_cur) = h_simple
                .primary()
                .lookup_eq(p, &amount)
                .expect("keyed primary")
            {
                while probe_cur
                    .next(p, h_simple.primary())
                    .expect("probe")
                    .is_some()
                {}
            }
        }
    });
    let q10_simple = cost_of(pager, |p| {
        let mut cur = h_simple.primary().scan();
        while let Some((_, row)) =
            cur.next(p, h_simple.primary()).expect("scan")
        {
            let amount = h_amount.extract(&row).to_vec();
            if let Some(mut probe_cur) = i_simple
                .primary()
                .lookup_eq(p, &amount)
                .expect("keyed primary")
            {
                while probe_cur
                    .next(p, i_simple.primary())
                    .expect("probe")
                    .is_some()
                {}
            }
        }
    });

    // Q07 through the four index variants.
    let amount_key = (AMOUNT_H as i32).to_le_bytes();
    let via_conv_index = |pager: &Pager, idx: &SecondaryIndex| {
        cost_of(pager, |p| {
            let hits = idx.fetch(p, &h.file, &amount_key).expect("fetch");
            // Keep only current versions, as Q07's `when` clause demands.
            let n = hits
                .iter()
                .filter(|(_, row)| is_current_row(&h.schema, &h.codec, row))
                .count();
            assert_eq!(n, 1);
        })
    };
    let q07_l1_heap = via_conv_index(pager, &l1_heap);
    let q07_l1_hash = via_conv_index(pager, &l1_hash);
    let via_cur_index = |pager: &Pager, idx: &SecondaryIndex| {
        cost_of(pager, |p| {
            let hits = idx
                .fetch(p, h_simple.primary(), &amount_key)
                .expect("fetch");
            assert_eq!(hits.len(), 1);
        })
    };
    let q07_l2_heap = via_cur_index(pager, &l2_heap);
    let q07_l2_hash = via_cur_index(pager, &l2_hash);

    let conv = |q: &str, uc: u32| sweep.input(q, uc);
    let n = sweep.max_uc;
    crate::queries::QUERY_IDS
        .iter()
        .map(|q| {
            let mut row = Fig10Row {
                query: q,
                conv_uc0: conv(q, 0),
                conv_ucn: conv(q, n),
                ..Default::default()
            };
            match *q {
                "Q01" => row.clustered = Some(q01_clustered),
                "Q02" => row.clustered = Some(q02_clustered),
                "Q05" => row.simple = Some(q05_simple),
                "Q06" => row.simple = Some(q06_simple),
                "Q07" => {
                    row.simple = Some(q07_simple);
                    row.l1_heap = Some(q07_l1_heap);
                    row.l1_hash = Some(q07_l1_hash);
                    row.l2_heap = Some(q07_l2_heap);
                    row.l2_hash = Some(q07_l2_hash);
                }
                "Q08" => row.simple = Some(q08_simple),
                "Q09" => row.simple = Some(q09_simple),
                "Q10" => row.simple = Some(q10_simple),
                _ => {}
            }
            row
        })
        .collect()
}

/// §5.4: the maximum-variance experiment. Returns, per average update
/// count `0..=max_avg_uc`, the measured `(hot, cold, weighted-average)`
/// costs of a hashed keyed access — hot probing the repeatedly updated
/// tuple, cold probing a tuple in an untouched bucket; the weighted
/// average is over all 1024 tuples (the 8 tuples sharing the hot bucket
/// pay the chain, the rest pay one page).
pub fn nonuniform_experiment(max_avg_uc: u32) -> Vec<(u32, u64, u64, f64)> {
    use crate::workload::{
        build_database, evolve_single_tuple, BenchConfig, NTUPLES,
    };
    let cfg = BenchConfig::new(tdbms_kernel::DatabaseClass::Temporal, 100);
    let mut db = build_database(&cfg);
    let mut out = Vec::new();
    let mut applied: u32 = 0;
    for avg in 0..=max_avg_uc {
        let target = avg * NTUPLES as u32;
        evolve_single_tuple(&mut db, target - applied);
        applied = target;
        let hot = db
            .execute(&format!(
                "retrieve (h.id, h.seq) where h.id = {PROBE_ID}"
            ))
            .expect("hot probe")
            .stats
            .input_pages;
        // Tuple 501 hashes to the adjacent bucket — untouched.
        let cold = db
            .execute(&format!(
                "retrieve (h.id, h.seq) where h.id = {}",
                PROBE_ID + 1
            ))
            .expect("cold probe")
            .stats
            .input_pages;
        // 8 tuples share the hot bucket (1024 ids over 128 buckets).
        let weighted = (8.0 * hot as f64
            + (NTUPLES as f64 - 8.0) * cold as f64)
            / NTUPLES as f64;
        out.push((avg, hot, cold, weighted));
    }
    out
}

/// Sort helper used in reports.
pub fn by_query(a: &Fig10Row, b: &Fig10Row) -> Ordering {
    a.query.cmp(b.query)
}
