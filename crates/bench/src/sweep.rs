//! Update-count sweeps: run the benchmark queries on a database as its
//! average update count grows, recording sizes and input/output page
//! costs — the raw data behind every figure. Also the buffer-sensitivity
//! sweep behind fig11, which holds the update count fixed and grows the
//! frames-per-relation cap instead.

use crate::queries::{queries_for, BenchQuery};
use crate::workload::{
    build_database, build_scale_database, evolve_scale_round,
    evolve_uniform, BenchConfig, ScaleConfig, SCALE_REL,
};
use std::collections::BTreeMap;
use tdbms_core::Database;
use tdbms_kernel::Prng;

/// Measured page costs of one query at one update count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cost {
    /// Input pages (reads of user relations including temporaries).
    pub input: u64,
    /// Output pages (temporary/materialized writes).
    pub output: u64,
    /// Result tuples.
    pub tuples: u64,
}

/// All measurements for one database configuration across update counts
/// `0..=max_uc`.
#[derive(Debug, Clone)]
pub struct SweepData {
    /// The database configuration.
    pub cfg: BenchConfig,
    /// Highest update count measured.
    pub max_uc: u32,
    /// Total pages of the hashed relation, per update count.
    pub sizes_h: Vec<u32>,
    /// Total pages of the ISAM relation, per update count.
    pub sizes_i: Vec<u32>,
    /// Per query id: costs per update count (index = update count).
    pub costs: BTreeMap<&'static str, Vec<Cost>>,
    /// Per query id: planner-estimated `(input, output)` page costs per
    /// update count, from [`Database::estimate_retrieve`] — computed
    /// without executing, against the maintained statistics.
    pub est: BTreeMap<&'static str, Vec<(u64, u64)>>,
    /// ISAM directory levels of the `_i` relation (constant across the
    /// sweep; the directory is static).
    pub dir_levels_i: u32,
}

impl SweepData {
    /// Input pages of `query` at `uc`.
    pub fn input(&self, query: &str, uc: u32) -> Option<u64> {
        self.costs.get(query).map(|v| v[uc as usize].input)
    }

    /// Output pages of `query` at `uc`.
    pub fn output(&self, query: &str, uc: u32) -> Option<u64> {
        self.costs.get(query).map(|v| v[uc as usize].output)
    }

    /// Planner-estimated input pages of `query` at `uc`.
    pub fn est_input(&self, query: &str, uc: u32) -> Option<u64> {
        self.est.get(query).map(|v| v[uc as usize].0)
    }
}

/// Measure one query's page costs (the statement starts with cold buffers
/// and fresh counters, as in the paper's methodology).
pub fn measure(db: &mut Database, q: &BenchQuery) -> Cost {
    let out = db
        .execute(&q.tquel)
        .unwrap_or_else(|e| panic!("{} failed: {e}\n{}", q.id, q.tquel));
    Cost {
        input: out.stats.input_pages,
        output: out.stats.output_pages,
        tuples: out.affected as u64,
    }
}

/// Run a full sweep: measure all applicable queries at update count 0,
/// then alternate update rounds and measurements up to `max_uc`. Returns
/// the data and the evolved database (used further by the Figure 10
/// experiments).
pub fn run_sweep(cfg: BenchConfig, max_uc: u32) -> (SweepData, Database) {
    let mut db = build_database(&cfg);
    let queries = queries_for(cfg.class);
    let mut data = SweepData {
        cfg,
        max_uc,
        sizes_h: Vec::with_capacity(max_uc as usize + 1),
        sizes_i: Vec::with_capacity(max_uc as usize + 1),
        costs: queries
            .iter()
            .map(|q| (q.id, Vec::with_capacity(max_uc as usize + 1)))
            .collect(),
        est: queries
            .iter()
            .map(|q| (q.id, Vec::with_capacity(max_uc as usize + 1)))
            .collect(),
        dir_levels_i: db
            .relation_meta(&cfg.rel_i())
            .expect("relation exists")
            .directory_levels,
    };
    for uc in 0..=max_uc {
        if uc > 0 {
            evolve_uniform(&mut db, &cfg);
        }
        data.sizes_h
            .push(db.relation_meta(&cfg.rel_h()).unwrap().total_pages);
        data.sizes_i
            .push(db.relation_meta(&cfg.rel_i()).unwrap().total_pages);
        for q in &queries {
            // Estimate first: it is side-effect-free (no clock tick, no
            // buffer invalidation, no counter reset), so the measured
            // run that follows is untouched.
            let est = db.estimate_retrieve(&q.tquel).unwrap_or_else(|e| {
                panic!("{} estimate failed: {e}", q.id)
            });
            data.est.get_mut(q.id).expect("registered").push(est);
            let cost = measure(&mut db, q);
            data.costs.get_mut(q.id).expect("registered").push(cost);
        }
    }
    (data, db)
}

/// Page costs plus buffer behaviour of one query at one frame cap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferCost {
    /// Input/output pages and result tuples at this cap.
    pub cost: Cost,
    /// Buffered accesses satisfied without a disk fetch.
    pub hits: u64,
    /// Frames evicted under capacity pressure.
    pub evictions: u64,
}

/// The buffer-sensitivity sweep: one database at a fixed update count,
/// measured at each frames-per-relation setting.
#[derive(Debug, Clone)]
pub struct BufferSweepData {
    /// The database configuration.
    pub cfg: BenchConfig,
    /// The fixed update count (the paper reports UC 14).
    pub uc: u32,
    /// The frame caps measured, in order (fig11 uses 1..=8).
    pub frames: Vec<usize>,
    /// Per query id: one [`BufferCost`] per entry of `frames`.
    pub costs: BTreeMap<&'static str, Vec<BufferCost>>,
}

impl BufferSweepData {
    /// Input pages of `query` at frame-cap index `fi`.
    pub fn input(&self, query: &str, fi: usize) -> Option<u64> {
        self.costs.get(query).map(|v| v[fi].cost.input)
    }

    /// Buffer hits of `query` at frame-cap index `fi`.
    pub fn hits(&self, query: &str, fi: usize) -> Option<u64> {
        self.costs.get(query).map(|v| v[fi].hits)
    }
}

/// Run the buffer-sensitivity sweep: build the database, evolve it to
/// `uc`, then measure every applicable query at each cap in `frames`.
/// Each cap is applied as the pager default (so the temporaries a
/// decomposed query materializes get it too) *and* explicitly to both
/// benchmark relations, whose pools already exist.
///
/// The paper's reference strings are independent of buffering (cold
/// buffers per statement, access paths chosen before any page is read),
/// so under LRU — a stack algorithm — each query's input-page curve is
/// provably non-increasing in the cap; the paper's 1-frame setup is the
/// leftmost, most pessimistic point.
pub fn run_buffer_sweep(
    cfg: BenchConfig,
    uc: u32,
    frames: &[usize],
) -> BufferSweepData {
    let mut db = build_database(&cfg);
    for _ in 0..uc {
        evolve_uniform(&mut db, &cfg);
    }
    let queries = queries_for(cfg.class);
    let mut data = BufferSweepData {
        cfg,
        uc,
        frames: frames.to_vec(),
        costs: queries
            .iter()
            .map(|q| (q.id, Vec::with_capacity(frames.len())))
            .collect(),
    };
    for &f in frames {
        db.set_default_buffer_frames(f);
        for rel in [cfg.rel_h(), cfg.rel_i()] {
            db.set_buffer_frames(&rel, f).expect("relation exists");
        }
        for q in &queries {
            let out = db
                .execute(&q.tquel)
                .unwrap_or_else(|e| panic!("{} failed: {e}", q.id));
            data.costs.get_mut(q.id).expect("registered").push(
                BufferCost {
                    cost: Cost {
                        input: out.stats.input_pages,
                        output: out.stats.output_pages,
                        tuples: out.affected as u64,
                    },
                    hits: out.stats.buffer_hits,
                    evictions: out.stats.evictions,
                },
            );
        }
    }
    data
}

/// Run one sweep per configuration across `threads` worker threads
/// (work-queue order, results in configuration order). With `threads <= 1`
/// this is exactly the serial loop — same code path, same figures — and
/// with more threads each configuration still builds its own database, so
/// the measurements are bit-for-bit identical to the serial run.
pub fn run_sweeps_threaded(
    cfgs: &[BenchConfig],
    max_uc: u32,
    threads: usize,
) -> Vec<SweepData> {
    if threads <= 1 || cfgs.len() <= 1 {
        return cfgs.iter().map(|c| run_sweep(*c, max_uc).0).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    let next = AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<SweepData>>> =
        cfgs.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.min(cfgs.len()) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cfgs.len() {
                    break;
                }
                let data = run_sweep(cfgs[i], max_uc).0;
                *results[i].lock().expect("no panics hold this lock") =
                    Some(data);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("unpoisoned").expect("computed"))
        .collect()
}

/// [`run_buffer_sweep`] split across `threads` worker threads: the frame
/// caps are chunked, and each chunk rebuilds + evolves its own copy of the
/// (deterministic) database. The benchmark queries are side-effect free,
/// so each cap's measurement is independent of which database copy serves
/// it — the merged result equals the serial sweep.
pub fn run_buffer_sweep_threaded(
    cfg: BenchConfig,
    uc: u32,
    frames: &[usize],
    threads: usize,
) -> BufferSweepData {
    if threads <= 1 || frames.len() <= 1 {
        return run_buffer_sweep(cfg, uc, frames);
    }
    let nchunks = threads.min(frames.len());
    let per_chunk = frames.len().div_ceil(nchunks);
    let chunks: Vec<&[usize]> = frames.chunks(per_chunk).collect();
    let parts: Vec<std::sync::Mutex<Option<BufferSweepData>>> =
        chunks.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for (i, chunk) in chunks.iter().enumerate() {
            let parts = &parts;
            s.spawn(move || {
                let data = run_buffer_sweep(cfg, uc, chunk);
                *parts[i].lock().expect("no panics hold this lock") =
                    Some(data);
            });
        }
    });
    let mut merged = BufferSweepData {
        cfg,
        uc,
        frames: frames.to_vec(),
        costs: BTreeMap::new(),
    };
    for part in parts {
        let part =
            part.into_inner().expect("unpoisoned").expect("computed");
        for (q, costs) in part.costs {
            merged.costs.entry(q).or_default().extend(costs);
        }
    }
    merged
}

/// One round of the scale sweep: chain-probe page costs and storage
/// footprint after that round's updates (and, with reorganization on,
/// after that round's compaction pass).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScaleRound {
    /// Input pages of the at-now keyed probe on the hot key.
    pub hot_pages: u64,
    /// Input pages of the at-now keyed probe on the never-updated key.
    pub cold_pages: u64,
    /// Total pages of the primary file.
    pub primary_pages: u64,
    /// Rows resident in the history sidecar.
    pub history_rows: u64,
    /// Versions migrated by this round's reorganization pass.
    pub migrated: u64,
}

/// All rounds of one scale sweep, one configuration, reorg on or off.
#[derive(Debug, Clone)]
pub struct ScaleSweepData {
    /// The workload configuration.
    pub cfg: ScaleConfig,
    /// Whether each round ended with a reorganization pass.
    pub reorg: bool,
    /// Round 0 (freshly loaded) through round `rounds`.
    pub rounds: Vec<ScaleRound>,
}

impl ScaleSweepData {
    /// Hot-probe input pages of the last round.
    pub fn hot_final(&self) -> u64 {
        self.rounds.last().map(|r| r.hot_pages).unwrap_or(0)
    }

    /// Cold-probe input pages of the last round.
    pub fn cold_final(&self) -> u64 {
        self.rounds.last().map(|r| r.cold_pages).unwrap_or(0)
    }

    /// Total versions migrated across all rounds.
    pub fn migrated_total(&self) -> u64 {
        self.rounds.iter().map(|r| r.migrated).sum()
    }
}

/// Run the scale sweep: build the scale database, then alternate skewed
/// (or bursty) update rounds with keyed at-now probe measurements. With
/// `reorg` true every round ends with a [`Database::reorganize`] pass,
/// so superseded versions leave the primary chains before the probes
/// run — the bounded-I/O claim the `scale` driver asserts. Each probe
/// starts with cold buffers (the in-memory database's per-statement
/// default), so its `input_pages` count *is* the chain length in pages.
pub fn run_scale_sweep(
    cfg: &ScaleConfig,
    rounds: u32,
    reorg: bool,
) -> (ScaleSweepData, Database) {
    let mut db = build_scale_database(cfg);
    let mut rng = Prng::seed_from_u64(cfg.seed);
    let mut data = ScaleSweepData {
        cfg: *cfg,
        reorg,
        rounds: Vec::with_capacity(rounds as usize + 1),
    };
    let probe = |db: &mut Database, key: i64| -> u64 {
        let out = db
            .execute(&format!("retrieve (s.seq) where s.id = {key}"))
            .expect("scale probe");
        out.stats.input_pages
    };
    for round in 0..=rounds {
        let mut migrated = 0;
        if round > 0 {
            evolve_scale_round(cfg, &mut rng, |stmt| {
                db.execute(stmt).expect("scale update");
            });
            if reorg {
                migrated = db.reorganize(SCALE_REL).expect("reorganize");
            }
        }
        let rs = db.relation_stats(SCALE_REL).expect("stats");
        data.rounds.push(ScaleRound {
            hot_pages: probe(&mut db, cfg.hot_probe()),
            cold_pages: probe(&mut db, cfg.cold_probe()),
            primary_pages: rs.total_pages,
            history_rows: rs.history_rows,
            migrated,
        });
    }
    (data, db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdbms_kernel::DatabaseClass;

    /// The threaded drivers must be invisible in the data: every value
    /// identical to the serial sweep, whatever the thread count.
    #[test]
    fn threaded_sweeps_match_serial_exactly() {
        let cfgs = [
            BenchConfig::new(DatabaseClass::Static, 100),
            BenchConfig::new(DatabaseClass::Temporal, 100),
            BenchConfig::new(DatabaseClass::Rollback, 50),
        ];
        let serial: Vec<SweepData> =
            cfgs.iter().map(|c| run_sweep(*c, 1).0).collect();
        let threaded = run_sweeps_threaded(&cfgs, 1, 3);
        for (a, b) in serial.iter().zip(&threaded) {
            assert_eq!(a.sizes_h, b.sizes_h);
            assert_eq!(a.sizes_i, b.sizes_i);
            assert_eq!(a.costs, b.costs);
        }

        let cfg = BenchConfig::new(DatabaseClass::Temporal, 100);
        let frames = [1usize, 2, 4, 8];
        let serial = run_buffer_sweep(cfg, 1, &frames);
        let threaded = run_buffer_sweep_threaded(cfg, 1, &frames, 4);
        assert_eq!(serial.frames, threaded.frames);
        assert_eq!(serial.costs, threaded.costs);
    }

    /// A miniature sweep (UC 0..=2) checking the headline cost behaviours
    /// from Figures 6 and 7 — the full-scale checks live in the
    /// integration tests and bench harness.
    #[test]
    fn temporal_sweep_matches_paper_shapes() {
        let cfg = BenchConfig::new(DatabaseClass::Temporal, 100);
        let (data, _) = run_sweep(cfg, 2);

        // Q01: keyed hash access reads the chain: 1, then +2 per round.
        assert_eq!(data.input("Q01", 0), Some(1));
        assert_eq!(data.input("Q01", 1), Some(3));
        assert_eq!(data.input("Q01", 2), Some(5));
        // Q02: ISAM adds one directory read.
        assert_eq!(data.input("Q02", 0), Some(2));
        assert_eq!(data.input("Q02", 2), Some(6));
        // Q03/Q07: full scan of the hashed file.
        assert_eq!(data.input("Q03", 0), Some(128));
        assert_eq!(data.input("Q03", 2), Some(128 + 2 * 256));
        assert_eq!(data.input("Q07", 2), Some(128 + 2 * 256));
        // Q05 static query costs the same as the version scan (the
        // prototype reads the whole chain either way), though it returns
        // only the current version.
        let inputs = |q: &str| -> Vec<u64> {
            data.costs[q].iter().map(|c| c.input).collect()
        };
        assert_eq!(inputs("Q05"), inputs("Q01"));
        // Sizes: 128/129 pages initially, +256 per round.
        assert_eq!(data.sizes_h, vec![128, 384, 640]);
        assert_eq!(data.sizes_i, vec![129, 385, 641]);
        // Output tuples stay constant for the static queries…
        assert_eq!(data.costs["Q05"][0].tuples, 1);
        assert_eq!(data.costs["Q05"][2].tuples, 1);
        assert_eq!(data.costs["Q08"][2].tuples, 1);
        // …and grow for the version scan: n+1 transaction-current versions
        // at update count n (the other n stored versions are superseded
        // records, visible only by rolling back).
        assert_eq!(data.costs["Q01"][0].tuples, 1);
        assert_eq!(data.costs["Q01"][2].tuples, 3);
    }

    #[test]
    fn rollback_50_sweep_shows_jagged_growth() {
        let cfg = BenchConfig::new(DatabaseClass::Rollback, 50);
        let (data, _) = run_sweep(cfg, 2);
        // Round 1 fills slack (no growth), round 2 adds 256 pages.
        assert_eq!(data.sizes_h, vec![256, 256, 512]);
        // Scans follow the size.
        assert_eq!(data.input("Q03", 0), Some(256));
        assert_eq!(data.input("Q03", 1), Some(256));
        assert_eq!(data.input("Q03", 2), Some(512));
        // Keyed access: 1 page until the bucket overflows.
        assert_eq!(data.input("Q01", 0), Some(1));
        assert_eq!(data.input("Q01", 1), Some(1));
        assert_eq!(data.input("Q01", 2), Some(2));
    }

    #[test]
    fn buffer_sweep_is_monotone_and_paper_point_matches() {
        // Reduced-scale fig11: temporal/100 % at UC 2, caps 1/2/4/8. The
        // cap-1 column must agree exactly with the update-count sweep (the
        // paper's configuration is just fig11's leftmost point), and each
        // query's input cost must be non-increasing in the cap (LRU
        // inclusion property over a buffering-independent reference
        // string).
        let cfg = BenchConfig::new(DatabaseClass::Temporal, 100);
        let frames = [1usize, 2, 4, 8];
        let data = run_buffer_sweep(cfg, 2, &frames);
        let (uc_sweep, _) = run_sweep(cfg, 2);
        for (q, costs) in &data.costs {
            assert_eq!(
                costs[0].cost.input,
                uc_sweep.input(q, 2).unwrap(),
                "{q}: cap-1 column must equal the paper-mode measurement"
            );
            for w in costs.windows(2) {
                assert!(
                    w[1].cost.input <= w[0].cost.input,
                    "{q}: input pages grew with more frames: {costs:?}"
                );
                assert!(
                    w[1].hits >= w[0].hits,
                    "{q}: hits shrank with more frames: {costs:?}"
                );
            }
        }
        // Somebody must actually benefit from the extra frames (the scan
        // queries re-read overflow chains under substitution).
        assert!(data.costs.values().any(|c| {
            c.last().unwrap().cost.input < c.first().unwrap().cost.input
        }));
    }

    /// The scale sweep's headline claim in miniature: without
    /// reorganization the hot probe's page cost grows with the update
    /// volume; with it, superseded versions migrate out after every
    /// round and the probe cost stays at the loaded-state baseline. The
    /// cold key is never updated, so its cost never moves in either
    /// mode.
    #[test]
    fn reorganization_bounds_the_hot_probe_cost() {
        let cfg = ScaleConfig {
            updates_per_round: 256,
            ..ScaleConfig::new(200)
        };
        let (without, _) = run_scale_sweep(&cfg, 3, false);
        let (with, _) = run_scale_sweep(&cfg, 3, true);

        let baseline = without.rounds[0].hot_pages;
        assert_eq!(with.rounds[0].hot_pages, baseline);
        assert!(
            without.hot_final() > baseline,
            "unreorganized chains must grow: {:?}",
            without.rounds
        );
        assert!(
            with.hot_final() <= baseline + 1,
            "reorganized probe must stay near baseline: {:?}",
            with.rounds
        );
        assert!(with.hot_final() < without.hot_final());
        assert!(with.migrated_total() > 0);
        assert_eq!(without.migrated_total(), 0);
        assert_eq!(without.rounds.last().unwrap().history_rows, 0);
        for data in [&without, &with] {
            for r in &data.rounds {
                assert_eq!(r.cold_pages, data.rounds[0].cold_pages);
            }
        }
        // Identical streams: both modes commit the same updates, so the
        // hot key's visible seq agrees (probed via a fresh run here —
        // the sweep itself already measured pages, not values).
        let mut db = build_scale_database(&cfg);
        let mut rng = Prng::seed_from_u64(cfg.seed);
        for _ in 0..3 {
            evolve_scale_round(&cfg, &mut rng, |s| {
                db.execute(s).unwrap();
            });
        }
        let total: u64 = db.relation_meta(SCALE_REL).unwrap().tuple_count;
        assert_eq!(total, 200 + 3 * 256);
    }

    #[test]
    fn static_database_costs_do_not_grow() {
        let cfg = BenchConfig::new(DatabaseClass::Static, 100);
        let (data, _) = run_sweep(cfg, 2);
        for q in ["Q01", "Q02", "Q05", "Q06", "Q07", "Q08"] {
            let c = &data.costs[q];
            assert_eq!(c[0], c[1], "{q}");
            assert_eq!(c[0], c[2], "{q}");
        }
        assert_eq!(data.input("Q07", 0), Some(114));
        assert_eq!(data.input("Q08", 0), Some(114));
        assert_eq!(data.sizes_h, vec![114, 114, 114]);
    }
}
