//! Update-count sweeps: run the benchmark queries on a database as its
//! average update count grows, recording sizes and input/output page
//! costs — the raw data behind every figure.

use crate::queries::{queries_for, BenchQuery};
use crate::workload::{build_database, evolve_uniform, BenchConfig};
use std::collections::BTreeMap;
use tdbms_core::Database;

/// Measured page costs of one query at one update count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cost {
    /// Input pages (reads of user relations including temporaries).
    pub input: u64,
    /// Output pages (temporary/materialized writes).
    pub output: u64,
    /// Result tuples.
    pub tuples: u64,
}

/// All measurements for one database configuration across update counts
/// `0..=max_uc`.
#[derive(Debug, Clone)]
pub struct SweepData {
    /// The database configuration.
    pub cfg: BenchConfig,
    /// Highest update count measured.
    pub max_uc: u32,
    /// Total pages of the hashed relation, per update count.
    pub sizes_h: Vec<u32>,
    /// Total pages of the ISAM relation, per update count.
    pub sizes_i: Vec<u32>,
    /// Per query id: costs per update count (index = update count).
    pub costs: BTreeMap<&'static str, Vec<Cost>>,
    /// ISAM directory levels of the `_i` relation (constant across the
    /// sweep; the directory is static).
    pub dir_levels_i: u32,
}

impl SweepData {
    /// Input pages of `query` at `uc`.
    pub fn input(&self, query: &str, uc: u32) -> Option<u64> {
        self.costs.get(query).map(|v| v[uc as usize].input)
    }

    /// Output pages of `query` at `uc`.
    pub fn output(&self, query: &str, uc: u32) -> Option<u64> {
        self.costs.get(query).map(|v| v[uc as usize].output)
    }
}

/// Measure one query's page costs (the statement starts with cold buffers
/// and fresh counters, as in the paper's methodology).
pub fn measure(db: &mut Database, q: &BenchQuery) -> Cost {
    let out = db
        .execute(&q.tquel)
        .unwrap_or_else(|e| panic!("{} failed: {e}\n{}", q.id, q.tquel));
    Cost {
        input: out.stats.input_pages,
        output: out.stats.output_pages,
        tuples: out.affected as u64,
    }
}

/// Run a full sweep: measure all applicable queries at update count 0,
/// then alternate update rounds and measurements up to `max_uc`. Returns
/// the data and the evolved database (used further by the Figure 10
/// experiments).
pub fn run_sweep(cfg: BenchConfig, max_uc: u32) -> (SweepData, Database) {
    let mut db = build_database(&cfg);
    let queries = queries_for(cfg.class);
    let mut data = SweepData {
        cfg,
        max_uc,
        sizes_h: Vec::with_capacity(max_uc as usize + 1),
        sizes_i: Vec::with_capacity(max_uc as usize + 1),
        costs: queries
            .iter()
            .map(|q| (q.id, Vec::with_capacity(max_uc as usize + 1)))
            .collect(),
        dir_levels_i: db
            .relation_meta(&cfg.rel_i())
            .expect("relation exists")
            .directory_levels,
    };
    for uc in 0..=max_uc {
        if uc > 0 {
            evolve_uniform(&mut db, &cfg);
        }
        data.sizes_h
            .push(db.relation_meta(&cfg.rel_h()).unwrap().total_pages);
        data.sizes_i
            .push(db.relation_meta(&cfg.rel_i()).unwrap().total_pages);
        for q in &queries {
            let cost = measure(&mut db, q);
            data.costs.get_mut(q.id).expect("registered").push(cost);
        }
    }
    (data, db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdbms_kernel::DatabaseClass;

    /// A miniature sweep (UC 0..=2) checking the headline cost behaviours
    /// from Figures 6 and 7 — the full-scale checks live in the
    /// integration tests and bench harness.
    #[test]
    fn temporal_sweep_matches_paper_shapes() {
        let cfg = BenchConfig::new(DatabaseClass::Temporal, 100);
        let (data, _) = run_sweep(cfg, 2);

        // Q01: keyed hash access reads the chain: 1, then +2 per round.
        assert_eq!(data.input("Q01", 0), Some(1));
        assert_eq!(data.input("Q01", 1), Some(3));
        assert_eq!(data.input("Q01", 2), Some(5));
        // Q02: ISAM adds one directory read.
        assert_eq!(data.input("Q02", 0), Some(2));
        assert_eq!(data.input("Q02", 2), Some(6));
        // Q03/Q07: full scan of the hashed file.
        assert_eq!(data.input("Q03", 0), Some(128));
        assert_eq!(data.input("Q03", 2), Some(128 + 2 * 256));
        assert_eq!(data.input("Q07", 2), Some(128 + 2 * 256));
        // Q05 static query costs the same as the version scan (the
        // prototype reads the whole chain either way), though it returns
        // only the current version.
        let inputs =
            |q: &str| -> Vec<u64> { data.costs[q].iter().map(|c| c.input).collect() };
        assert_eq!(inputs("Q05"), inputs("Q01"));
        // Sizes: 128/129 pages initially, +256 per round.
        assert_eq!(data.sizes_h, vec![128, 384, 640]);
        assert_eq!(data.sizes_i, vec![129, 385, 641]);
        // Output tuples stay constant for the static queries…
        assert_eq!(data.costs["Q05"][0].tuples, 1);
        assert_eq!(data.costs["Q05"][2].tuples, 1);
        assert_eq!(data.costs["Q08"][2].tuples, 1);
        // …and grow for the version scan: n+1 transaction-current versions
        // at update count n (the other n stored versions are superseded
        // records, visible only by rolling back).
        assert_eq!(data.costs["Q01"][0].tuples, 1);
        assert_eq!(data.costs["Q01"][2].tuples, 3);
    }

    #[test]
    fn rollback_50_sweep_shows_jagged_growth() {
        let cfg = BenchConfig::new(DatabaseClass::Rollback, 50);
        let (data, _) = run_sweep(cfg, 2);
        // Round 1 fills slack (no growth), round 2 adds 256 pages.
        assert_eq!(data.sizes_h, vec![256, 256, 512]);
        // Scans follow the size.
        assert_eq!(data.input("Q03", 0), Some(256));
        assert_eq!(data.input("Q03", 1), Some(256));
        assert_eq!(data.input("Q03", 2), Some(512));
        // Keyed access: 1 page until the bucket overflows.
        assert_eq!(data.input("Q01", 0), Some(1));
        assert_eq!(data.input("Q01", 1), Some(1));
        assert_eq!(data.input("Q01", 2), Some(2));
    }

    #[test]
    fn static_database_costs_do_not_grow() {
        let cfg = BenchConfig::new(DatabaseClass::Static, 100);
        let (data, _) = run_sweep(cfg, 2);
        for q in ["Q01", "Q02", "Q05", "Q06", "Q07", "Q08"] {
            let c = &data.costs[q];
            assert_eq!(c[0], c[1], "{q}");
            assert_eq!(c[0], c[2], "{q}");
        }
        assert_eq!(data.input("Q07", 0), Some(114));
        assert_eq!(data.input("Q08", 0), Some(114));
        assert_eq!(data.sizes_h, vec![114, 114, 114]);
    }
}
