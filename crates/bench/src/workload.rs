//! The benchmark workload of Section 5.1.
//!
//! Eight test databases — {static, rollback, historical, temporal} ×
//! {100 %, 50 % loading} — each holding two relations of 1024 tuples with
//! 108 bytes of data (`id = i4, amount = i4, seq = i4, string = c96`):
//! `*_h` hashed on `id`, `*_i` ISAM on `id`. `transaction_start` /
//! `valid_from` are initialized to instants between Jan 1 and Feb 15,
//! 1980; the database then evolves by *update rounds*, each a `replace`
//! incrementing `seq` in every current version (uniform distribution) or
//! in a single tuple (the §5.4 maximum-variance case).

use tdbms_core::{Database, EvictionPolicy};
use tdbms_kernel::{
    Clock, DatabaseClass, Prng, TemporalAttr, TimeVal, Value,
};

/// Number of tuples per relation (the paper's 1024).
pub const NTUPLES: i64 = 1024;
/// The planted `amount` value matched by Q07.
pub const AMOUNT_H: i64 = 69_400;
/// The planted `amount` value matched by Q08 and Q12.
pub const AMOUNT_I: i64 = 73_700;
/// The key probed by Q01/Q02/Q05/Q06/Q12.
pub const PROBE_ID: i64 = 500;

/// Configuration of one test database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchConfig {
    /// Database class of both relations.
    pub class: DatabaseClass,
    /// Loading (fill) factor in percent: the paper uses 100 and 50.
    pub fillfactor: u8,
    /// RNG seed for `amount`/`string`/initial-time generation.
    pub seed: u64,
    /// Buffer frames per relation (paper: 1). Applied as the pager's
    /// default, so temporaries and `into` relations get it too.
    pub buffer_frames: usize,
    /// Buffer eviction policy (paper: LRU; moot at 1 frame).
    pub buffer_policy: EvictionPolicy,
}

impl BenchConfig {
    /// The paper's configuration for a class and fill factor.
    pub fn new(class: DatabaseClass, fillfactor: u8) -> Self {
        BenchConfig {
            class,
            fillfactor,
            seed: 8_504_033,
            buffer_frames: 1,
            buffer_policy: EvictionPolicy::Lru,
        }
    }

    /// All eight benchmark databases, in the paper's order.
    pub fn all() -> Vec<BenchConfig> {
        let mut v = Vec::new();
        for class in DatabaseClass::ALL {
            for fill in [100u8, 50] {
                v.push(BenchConfig::new(class, fill));
            }
        }
        v
    }

    /// Relation names for this class.
    pub fn rel_h(&self) -> String {
        format!("{}_h", self.class)
    }

    /// Relation names for this class.
    pub fn rel_i(&self) -> String {
        format!("{}_i", self.class)
    }
}

/// The class keyword used in the `create` statement.
fn class_keyword(class: DatabaseClass) -> &'static str {
    match class {
        DatabaseClass::Static => "static",
        DatabaseClass::Rollback => "rollback",
        DatabaseClass::Historical => "historical",
        DatabaseClass::Temporal => "temporal",
    }
}

/// Build one benchmark database: create both relations, load 1024 tuples
/// with randomized initial times, then `modify` to hash / ISAM at the
/// configured fill factor.
pub fn build_database(cfg: &BenchConfig) -> Database {
    build_database_with_hash(cfg, tdbms_storage::HashFn::Mod)
}

/// [`build_database`] with an explicit hash function (the ablation bench
/// compares the default mod hash against the Ingres-like multiplicative
/// one; see DESIGN.md substitution 1).
pub fn build_database_with_hash(
    cfg: &BenchConfig,
    hashfn: tdbms_storage::HashFn,
) -> Database {
    let mut db =
        Database::in_memory_with_buffers(tdbms_core::BufferConfig {
            default_frames: cfg.buffer_frames,
            policy: cfg.buffer_policy,
            per_file: Vec::new(),
        });
    db.set_hash_fn(hashfn);
    // Corruption-defense ablation: `TDBMS_CHECKSUMS=1` turns on page
    // checksumming for the whole run, so CI can assert the golden
    // figures are identical with scrubbing on and off (the sidecar is
    // out-of-band; page capacity and access paths must not move).
    if std::env::var("TDBMS_CHECKSUMS").is_ok_and(|v| v == "1") {
        db.enable_checksums()
            .expect("in-memory checksums cannot fail");
    }
    populate_database(&mut db, cfg);
    db
}

/// Load the paper's workload into an existing (possibly durable /
/// WAL-enabled) database: create both relations, load 1024 tuples with
/// randomized initial times, `modify` to hash / ISAM at the configured
/// fill factor, and declare the `h` / `i` range variables. The data is a
/// pure function of `cfg` — the storage backend underneath must not
/// change it.
pub fn populate_database(db: &mut Database, cfg: &BenchConfig) {
    // Updates happen from March 1980 on, after the initialization window.
    db.set_clock(Clock::new(TimeVal::from_ymd(1980, 3, 1).unwrap(), 60));

    let mut rng = Prng::seed_from_u64(cfg.seed);
    for (rel, planted_amount, method) in [
        (cfg.rel_h(), AMOUNT_H, "hash"),
        (cfg.rel_i(), AMOUNT_I, "isam"),
    ] {
        db.execute(&format!(
            "create {} interval {rel} \
             (id = i4, amount = i4, seq = i4, string = c96)",
            class_keyword(cfg.class)
        ))
        .expect("create benchmark relation");

        let rows = generate_rows(db, &rel, planted_amount, &mut rng);
        db.bulk_load_rows(&rel, &rows).expect("bulk load");
        db.execute(&format!(
            "modify {rel} to {method} on id where fillfactor = {}",
            cfg.fillfactor
        ))
        .expect("modify benchmark relation");
    }
    db.execute(&format!("range of h is {}", cfg.rel_h()))
        .unwrap();
    db.execute(&format!("range of i is {}", cfg.rel_i()))
        .unwrap();
}

/// Generate the 1024 initial rows for one relation (full stored arity).
fn generate_rows(
    db: &Database,
    rel: &str,
    planted_amount: i64,
    rng: &mut Prng,
) -> Vec<Vec<Value>> {
    let schema = db.schema_of(rel).expect("relation exists");
    let jan2 = TimeVal::from_ymd(1980, 1, 2).unwrap().as_secs();
    let feb15 = TimeVal::from_ymd(1980, 2, 15).unwrap().as_secs();

    (1..=NTUPLES)
        .map(|id| {
            // `amount` values are multiples of 100 below 100 000. The two
            // planted probe values occur exactly once each (on the tuple
            // with the probe id), and nowhere else.
            let amount = if id == PROBE_ID {
                planted_amount
            } else {
                loop {
                    let a = rng.random_range(0i64..1000) * 100;
                    if a != AMOUNT_H && a != AMOUNT_I {
                        break a;
                    }
                }
            };
            let string: String = (0..12)
                .map(|_| rng.random_range(b'a'..=b'z') as char)
                .collect();
            // Initial times: ids 1 and 2 predate the benchmark's rollback
            // probes ("4:00 1/1/80" and "08:00 1/1/80"); everything else
            // is uniform over Jan 2 – Feb 15, 1980. This keeps the output
            // of the as-of queries small and constant, as the paper
            // requires.
            let start = match id {
                1 => TimeVal::from_ymd_hms(1980, 1, 1, 1, 0, 0).unwrap(),
                2 => TimeVal::from_ymd_hms(1980, 1, 1, 3, 0, 0).unwrap(),
                _ => TimeVal::from_secs(rng.random_range(jan2..feb15)),
            };

            let mut row = vec![
                Value::Int(id),
                Value::Int(amount),
                Value::Int(0),
                Value::Str(string),
            ];
            for t in schema.implicit_attrs() {
                row.push(Value::Time(match t {
                    TemporalAttr::ValidFrom | TemporalAttr::ValidAt => {
                        start
                    }
                    TemporalAttr::TransactionStart => start,
                    TemporalAttr::ValidTo
                    | TemporalAttr::TransactionStop => TimeVal::FOREVER,
                }));
            }
            row
        })
        .collect()
}

/// One uniform update round: increment `seq` in every current version of
/// both relations (the paper's evolution step). The average update count
/// rises by one.
pub fn evolve_uniform(db: &mut Database, cfg: &BenchConfig) {
    for var in ["h", "i"] {
        db.execute(&format!("replace {var} (seq = {var}.seq + 1)"))
            .expect("uniform update round");
    }
    let _ = cfg;
}

/// §5.4's maximum-variance evolution: update only the tuple with
/// `PROBE_ID`, `times` times, in both relations.
pub fn evolve_single_tuple(db: &mut Database, times: u32) {
    for _ in 0..times {
        for var in ["h", "i"] {
            db.execute(&format!(
                "replace {var} (seq = {var}.seq + 1) where {var}.id = {PROBE_ID}"
            ))
            .expect("single-tuple update");
        }
    }
}

// ---- scale workload ----------------------------------------------------
//
// Everything below stresses the system *past* the paper's 1024 tuples:
// a single keyed rollback relation at `--scale N`, evolved with skewed
// or bursty update distributions so version chains grow unevenly — the
// regime online reorganization exists for. None of it is reachable from
// the paper-mode figure drivers, whose golden output stays byte-frozen.

/// Name of the scale-stress relation.
pub const SCALE_REL: &str = "scale_r";

/// Configuration of one scale-stress database and its update stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleConfig {
    /// Distinct keys loaded (the paper's 1024, times many).
    pub scale: u64,
    /// RNG seed driving the update-key stream.
    pub seed: u64,
    /// Size of the hot set: keys `1..=hot_keys` absorb `hot_pct` of the
    /// skewed updates.
    pub hot_keys: u64,
    /// Percent of skewed updates that land in the hot set.
    pub hot_pct: u32,
    /// Updates applied per evolution round.
    pub updates_per_round: u64,
    /// Bursty mode: each round hammers ONE key (drawn from the hot set)
    /// with the whole round's updates — the §5.4 maximum-variance case
    /// at scale.
    pub bursty: bool,
}

impl ScaleConfig {
    /// Defaults for a given scale: a 1 % hot set taking 90 % of the
    /// updates, round size proportional to the scale but capped so a
    /// debug-build smoke run stays fast.
    pub fn new(scale: u64) -> Self {
        let scale = scale.max(16);
        ScaleConfig {
            scale,
            seed: 8_504_033,
            hot_keys: (scale / 100).max(1),
            hot_pct: 90,
            updates_per_round: (scale / 10).clamp(64, 4096),
            bursty: false,
        }
    }

    /// The key probed as "hot" by the scale sweep (always in the hot
    /// set, so its chain grows fastest).
    pub fn hot_probe(&self) -> i64 {
        1
    }

    /// The key probed as "cold": the update stream never draws it (both
    /// distributions sample `1..scale` exclusive), so its chain stays at
    /// one version for the whole run.
    pub fn cold_probe(&self) -> i64 {
        self.scale as i64
    }
}

/// Build the scale database: one rollback relation of `scale` tuples
/// (`id = i4, seq = i4`), bulk-loaded then hashed on `id`, with range
/// variable `s` declared. Deterministic in `cfg`.
pub fn build_scale_database(cfg: &ScaleConfig) -> Database {
    let mut db = Database::in_memory();
    populate_scale_database(&mut db, cfg);
    db
}

/// [`build_scale_database`] into an existing (possibly durable)
/// database.
pub fn populate_scale_database(db: &mut Database, cfg: &ScaleConfig) {
    db.set_clock(Clock::new(TimeVal::from_ymd(1980, 3, 1).unwrap(), 60));
    // Past-the-paper mode: guard the overflow chains (the `modify`
    // below installs the filter at rebuild time).
    db.set_bloom_guards(true);
    db.execute(&format!(
        "create rollback interval {SCALE_REL} (id = i4, seq = i4)"
    ))
    .expect("create scale relation");
    let schema = db.schema_of(SCALE_REL).expect("relation exists");
    let start = TimeVal::from_ymd(1980, 1, 2).unwrap();
    let rows: Vec<Vec<Value>> = (1..=cfg.scale as i64)
        .map(|id| {
            let mut row = vec![Value::Int(id), Value::Int(0)];
            for t in schema.implicit_attrs() {
                row.push(Value::Time(match t {
                    TemporalAttr::ValidFrom
                    | TemporalAttr::ValidAt
                    | TemporalAttr::TransactionStart => start,
                    TemporalAttr::ValidTo
                    | TemporalAttr::TransactionStop => TimeVal::FOREVER,
                }));
            }
            row
        })
        .collect();
    db.bulk_load_rows(SCALE_REL, &rows).expect("bulk load");
    db.execute(&format!(
        "modify {SCALE_REL} to hash on id where fillfactor = 100"
    ))
    .expect("modify scale relation");
    db.execute(&format!("range of s is {SCALE_REL}")).unwrap();
}

/// The next update key of the configured distribution. Skewed: `hot_pct`
/// of draws land in `1..=hot_keys`, the rest uniform over the non-probe
/// range. Bursty rounds pass the round's single `burst_key` instead.
pub fn scale_update_key(cfg: &ScaleConfig, rng: &mut Prng) -> i64 {
    if rng.random_range(0u64..100) < u64::from(cfg.hot_pct) {
        rng.random_range(1i64..=cfg.hot_keys as i64)
    } else {
        // Exclusive upper bound keeps `cold_probe` untouched forever.
        rng.random_range(1i64..cfg.scale as i64)
    }
}

/// One evolution round of the scale workload: `updates_per_round`
/// keyed replaces drawn from the skewed distribution — or, in bursty
/// mode, all aimed at one hot key drawn per round. Statements go
/// through `run`, so the same stream can drive an embedded database or
/// an engine session.
pub fn evolve_scale_round(
    cfg: &ScaleConfig,
    rng: &mut Prng,
    mut run: impl FnMut(&str),
) {
    let burst_key = cfg
        .bursty
        .then(|| rng.random_range(1i64..=cfg.hot_keys as i64));
    for _ in 0..cfg.updates_per_round {
        let key = match burst_key {
            Some(k) => k,
            None => scale_update_key(cfg, rng),
        };
        run(&format!("replace s (seq = s.seq + 1) where s.id = {key}"));
    }
}

/// Extract every stored row of a relation (raw bytes) — used to rebuild
/// the relation into a two-level store for the Figure 10 experiments.
pub fn all_rows(db: &mut Database, rel: &str) -> Vec<Vec<u8>> {
    let rel = rel.to_owned();
    let (pager, catalog, _) = db.internals();
    let id = catalog.require(&rel).expect("relation exists");
    let file = catalog.get(id).file.clone();
    let mut rows = Vec::new();
    let mut cur = file.scan();
    while let Some((_, row)) = cur.next(pager, &file).expect("scan") {
        rows.push(row);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loaded_databases_match_paper_sizes() {
        // Figure 5's update-count-0 row (modulo the documented hash
        // substitution: our uniform mod hash stores 1024 8-per-page rows
        // in exactly 128 primary pages, the paper's Ingres hash used 129).
        let cfg = BenchConfig::new(DatabaseClass::Temporal, 100);
        let db = build_database(&cfg);
        let h = db.relation_meta(&cfg.rel_h()).unwrap();
        let i = db.relation_meta(&cfg.rel_i()).unwrap();
        assert_eq!(h.tuple_count, 1024);
        assert_eq!(h.total_pages, 128);
        assert_eq!(i.total_pages, 129); // 128 data + 1 directory
        assert_eq!(i.scannable_pages, 128);

        let cfg = BenchConfig::new(DatabaseClass::Static, 100);
        let db = build_database(&cfg);
        assert_eq!(
            db.relation_meta(&cfg.rel_h()).unwrap().total_pages,
            114
        );
        assert_eq!(
            db.relation_meta(&cfg.rel_i()).unwrap().total_pages,
            115
        );

        let cfg = BenchConfig::new(DatabaseClass::Rollback, 50);
        let db = build_database(&cfg);
        assert_eq!(
            db.relation_meta(&cfg.rel_h()).unwrap().total_pages,
            256
        );
        assert_eq!(
            db.relation_meta(&cfg.rel_i()).unwrap().total_pages,
            259
        );
    }

    #[test]
    fn planted_amounts_occur_exactly_once() {
        let cfg = BenchConfig::new(DatabaseClass::Historical, 100);
        let mut db = build_database(&cfg);
        let out = db
            .execute(&format!(
                "retrieve (h.id) where h.amount = {AMOUNT_H}"
            ))
            .unwrap();
        assert_eq!(out.rows().len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(PROBE_ID));
        let out = db
            .execute(&format!(
                "retrieve (i.id) where i.amount = {AMOUNT_I}"
            ))
            .unwrap();
        assert_eq!(out.rows().len(), 1);
        // And the *other* planted value does not appear in this relation.
        let out = db
            .execute(&format!(
                "retrieve (i.id) where i.amount = {AMOUNT_H}"
            ))
            .unwrap();
        assert_eq!(out.rows().len(), 0);
    }

    #[test]
    fn uniform_evolution_grows_at_paper_rates() {
        let cfg = BenchConfig::new(DatabaseClass::Temporal, 100);
        let mut db = build_database(&cfg);
        evolve_uniform(&mut db, &cfg);
        evolve_uniform(&mut db, &cfg);
        let h = db.relation_meta(&cfg.rel_h()).unwrap();
        // +2048 rows per round (two inserts per tuple).
        assert_eq!(h.tuple_count, 1024 * 5);
        // +256 pages per round on 128 initial pages: growth rate ≈ 2.
        assert_eq!(h.total_pages, 128 + 2 * 256);

        let cfg = BenchConfig::new(DatabaseClass::Rollback, 100);
        let mut db = build_database(&cfg);
        evolve_uniform(&mut db, &cfg);
        let h = db.relation_meta(&cfg.rel_h()).unwrap();
        assert_eq!(h.tuple_count, 1024 * 2);
        assert_eq!(h.total_pages, 128 + 128);
    }

    #[test]
    fn fifty_percent_loading_fills_slack_before_growing() {
        // The paper's "jagged lines": the first round fits in the slack.
        let cfg = BenchConfig::new(DatabaseClass::Rollback, 50);
        let mut db = build_database(&cfg);
        let before = db.relation_meta(&cfg.rel_h()).unwrap().total_pages;
        evolve_uniform(&mut db, &cfg);
        let after1 = db.relation_meta(&cfg.rel_h()).unwrap().total_pages;
        assert_eq!(before, after1, "round 1 fills slack");
        evolve_uniform(&mut db, &cfg);
        let after2 = db.relation_meta(&cfg.rel_h()).unwrap().total_pages;
        assert_eq!(after2, after1 + 256, "round 2 overflows");
    }

    #[test]
    fn single_tuple_evolution_touches_one_chain() {
        let cfg = BenchConfig::new(DatabaseClass::Temporal, 100);
        let mut db = build_database(&cfg);
        evolve_single_tuple(&mut db, 4);
        let h = db.relation_meta(&cfg.rel_h()).unwrap();
        assert_eq!(h.tuple_count, 1024 + 8);
        // Only the probe tuple's bucket grew: 128 + 1 overflow page.
        assert_eq!(h.total_pages, 129);
    }

    #[test]
    fn generation_is_bit_deterministic() {
        // Two independent builds from the same seed must agree byte for
        // byte on every stored row AND on the page-I/O accounting of a
        // query — the paper's metric is only reproducible if both hold.
        let cfg = BenchConfig::new(DatabaseClass::Temporal, 100);
        let mut a = build_database(&cfg);
        let mut b = build_database(&cfg);
        for rel in [cfg.rel_h(), cfg.rel_i()] {
            assert_eq!(
                all_rows(&mut a, &rel),
                all_rows(&mut b, &rel),
                "{rel} rows differ between identically-seeded builds"
            );
        }
        let probe = |db: &mut Database| {
            let out = db
                .execute(&format!(
                    "retrieve (h.seq) where h.id = {PROBE_ID}"
                ))
                .unwrap();
            (out.stats.input_pages, out.stats.output_pages)
        };
        assert_eq!(probe(&mut a), probe(&mut b));

        // A different seed actually changes the data (the generator is
        // wired in, not bypassed).
        let other = BenchConfig { seed: 1, ..cfg };
        let mut c = build_database(&other);
        assert_ne!(
            all_rows(&mut a, &cfg.rel_h()),
            all_rows(&mut c, &cfg.rel_h())
        );
    }

    #[test]
    fn scale_update_stream_is_deterministic_and_skewed() {
        let cfg = ScaleConfig::new(1000);
        let draw = |cfg: &ScaleConfig| -> Vec<i64> {
            let mut rng = Prng::seed_from_u64(cfg.seed);
            (0..2000).map(|_| scale_update_key(cfg, &mut rng)).collect()
        };
        let a = draw(&cfg);
        assert_eq!(a, draw(&cfg), "same seed, same stream");
        assert_ne!(
            a,
            draw(&ScaleConfig { seed: 7, ..cfg }),
            "seed is wired in"
        );
        // Skew: roughly hot_pct of draws land in the hot set (binomial
        // with n=2000, p=0.9 — a ±5 % band is > 6 sigma).
        let hot = a.iter().filter(|&&k| k <= cfg.hot_keys as i64).count();
        assert!(
            (1700..=1900).contains(&hot),
            "hot-set draws out of band: {hot}/2000"
        );
        // The cold probe key is never drawn, so its chain never grows.
        assert!(a.iter().all(|&k| k >= 1 && k < cfg.cold_probe()));
    }

    #[test]
    fn scale_database_loads_and_bursty_rounds_hammer_one_key() {
        let cfg = ScaleConfig::new(500);
        let mut db = build_scale_database(&cfg);
        let meta = db.relation_meta(SCALE_REL).unwrap();
        assert_eq!(meta.tuple_count, 500);
        let out = db
            .execute(&format!(
                "retrieve (s.seq) where s.id = {}",
                cfg.cold_probe()
            ))
            .unwrap();
        assert_eq!(out.rows(), &[vec![Value::Int(0)]]);

        // A bursty round emits updates_per_round statements, all naming
        // the same (hot) key.
        let bursty = ScaleConfig {
            bursty: true,
            ..cfg
        };
        let mut rng = Prng::seed_from_u64(bursty.seed);
        let mut stmts = Vec::new();
        evolve_scale_round(&bursty, &mut rng, |s| {
            stmts.push(s.to_owned());
        });
        assert_eq!(stmts.len(), bursty.updates_per_round as usize);
        assert!(stmts.iter().all(|s| s == &stmts[0]));
        let key: i64 = stmts[0]
            .rsplit("= ")
            .next()
            .unwrap()
            .parse()
            .expect("statement ends with the key");
        assert!(key >= 1 && key <= bursty.hot_keys as i64);

        // Applying the round grows exactly one chain.
        for s in &stmts {
            db.execute(s).unwrap();
        }
        let out = db
            .execute(&format!("retrieve (s.seq) where s.id = {key}"))
            .unwrap();
        assert_eq!(
            out.rows(),
            &[vec![Value::Int(bursty.updates_per_round as i64)]]
        );
        assert_eq!(
            db.relation_meta(SCALE_REL).unwrap().tuple_count,
            500 + bursty.updates_per_round
        );
    }

    #[test]
    fn all_rows_extracts_every_version() {
        let cfg = BenchConfig::new(DatabaseClass::Temporal, 100);
        let mut db = build_database(&cfg);
        evolve_uniform(&mut db, &cfg);
        let rows = all_rows(&mut db, &cfg.rel_h());
        assert_eq!(rows.len(), 1024 * 3);
        assert!(rows.iter().all(|r| r.len() == 124));
    }
}
