//! The fixed/variable-cost analysis of Section 5.3.
//!
//! The paper divides a query's input cost into a *fixed* portion —
//! independent of the update count: ISAM directory traversals, reading a
//! constant-size temporary — and a *variable* portion that grows with the
//! relation. The **growth rate**
//!
//! ```text
//!                cost(n) - cost(0)
//! growth rate = -------------------
//!                variable cost × n
//! ```
//!
//! turns out to depend only on the database type and the loading factor
//! (≈ fill factor for rollback/historical, ≈ 2× for temporal), giving the
//! predictive formula
//!
//! ```text
//! cost(n) = fixed + variable × (1 + growth_rate × n)
//! ```

use crate::sweep::SweepData;
use crate::workload::NTUPLES;

/// The decomposition of one query's cost on one database.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Pages independent of the update count.
    pub fixed: u64,
    /// Pages at update count 0 beyond the fixed portion.
    pub variable: u64,
    /// Growth per update, as a fraction of the variable cost.
    pub growth_rate: f64,
}

impl CostModel {
    /// The paper's predictive formula: expected input pages at update
    /// count `n`.
    pub fn predict(&self, n: u32) -> f64 {
        self.fixed as f64
            + self.variable as f64 * (1.0 + self.growth_rate * n as f64)
    }
}

/// The analytically known fixed cost of a benchmark query, derived the
/// way the paper derives it: directory traversals and constant-size
/// temporary reads.
///
/// * `Q02`/`Q06` — one ISAM directory descent.
/// * `Q09` — reading back the detachment temporary (= its output pages).
/// * `Q10` — one directory descent per substituted tuple (1024 of them)
///   plus the temporary.
/// * `Q12` — the small join temporaries.
/// * everything else — 0.
pub fn fixed_cost(query: &str, sweep: &SweepData) -> u64 {
    let dir = sweep.dir_levels_i as u64;
    match query {
        "Q02" | "Q06" => dir,
        "Q09" => sweep.output(query, 0).unwrap_or(0),
        "Q10" => NTUPLES as u64 * dir + sweep.output(query, 0).unwrap_or(0),
        "Q12" => sweep.output(query, 0).unwrap_or(0),
        _ => 0,
    }
}

/// Fit the cost model for `query` from a sweep (measured at update counts
/// 0 and `max_uc`). Returns `None` when the query does not apply to the
/// sweep's database class.
pub fn cost_model(query: &str, sweep: &SweepData) -> Option<CostModel> {
    let c0 = sweep.input(query, 0)?;
    let cn = sweep.input(query, sweep.max_uc)?;
    let fixed = fixed_cost(query, sweep).min(c0);
    let variable = c0 - fixed;
    let growth_rate = if variable == 0 || sweep.max_uc == 0 {
        0.0
    } else {
        (cn as f64 - c0 as f64) / (variable as f64 * sweep.max_uc as f64)
    };
    Some(CostModel {
        fixed,
        variable,
        growth_rate,
    })
}

/// Worst relative error of the predictive formula against the measured
/// sweep, over all update counts (used by tests and EXPERIMENTS.md).
pub fn model_max_relative_error(
    query: &str,
    sweep: &SweepData,
) -> Option<f64> {
    let model = cost_model(query, sweep)?;
    let mut worst: f64 = 0.0;
    for uc in 0..=sweep.max_uc {
        let measured = sweep.input(query, uc)? as f64;
        let predicted = model.predict(uc);
        if measured > 0.0 {
            worst = worst.max((predicted - measured).abs() / measured);
        }
    }
    Some(worst)
}

/// Space-growth summary for one relation across a sweep (Figure 5's
/// derived columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpaceGrowth {
    /// Pages at update count 0.
    pub size0: u32,
    /// Pages at the last measured update count.
    pub size_n: u32,
    /// Pages added per update round, averaged.
    pub growth_per_update: f64,
    /// `growth_per_update / size0`.
    pub growth_rate: f64,
}

/// Compute [`SpaceGrowth`] from a size series indexed by update count.
pub fn space_growth(sizes: &[u32]) -> SpaceGrowth {
    let size0 = sizes[0];
    let size_n = *sizes.last().expect("nonempty");
    let rounds = (sizes.len() - 1).max(1) as f64;
    let growth_per_update = (size_n as f64 - size0 as f64) / rounds;
    SpaceGrowth {
        size0,
        size_n,
        growth_per_update,
        growth_rate: growth_per_update / size0 as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::run_sweep;
    use crate::workload::BenchConfig;
    use tdbms_kernel::DatabaseClass;

    #[test]
    fn growth_rates_match_the_papers_law() {
        // Small sweeps are enough: the growth rate is constant in n.
        let (t100, _) =
            run_sweep(BenchConfig::new(DatabaseClass::Temporal, 100), 3);
        let (r100, _) =
            run_sweep(BenchConfig::new(DatabaseClass::Rollback, 100), 4);
        // Temporal at 100 % loading: growth rate ≈ 2, independent of the
        // query and access method.
        for q in ["Q01", "Q02", "Q03", "Q04", "Q07", "Q08"] {
            let m = cost_model(q, &t100).unwrap();
            assert!(
                (m.growth_rate - 2.0).abs() < 0.05,
                "{q}: growth {}",
                m.growth_rate
            );
        }
        // Rollback at 100 %: growth rate ≈ 1. (Even update counts, so the
        // 50 % fill-the-slack jitter does not apply here.)
        for q in ["Q01", "Q02", "Q03", "Q04", "Q07", "Q08"] {
            let m = cost_model(q, &r100).unwrap();
            assert!(
                (m.growth_rate - 1.0).abs() < 0.05,
                "{q}: growth {}",
                m.growth_rate
            );
        }
    }

    #[test]
    fn rollback_50_growth_rate_is_half() {
        let (r50, _) =
            run_sweep(BenchConfig::new(DatabaseClass::Rollback, 50), 4);
        for q in ["Q01", "Q03", "Q07"] {
            let m = cost_model(q, &r50).unwrap();
            assert!(
                (m.growth_rate - 0.5).abs() < 0.05,
                "{q}: growth {}",
                m.growth_rate
            );
        }
    }

    #[test]
    fn predictive_formula_tracks_measurements() {
        let (t100, _) =
            run_sweep(BenchConfig::new(DatabaseClass::Temporal, 100), 3);
        for q in ["Q01", "Q02", "Q03", "Q04", "Q05", "Q07", "Q08", "Q12"] {
            let err = model_max_relative_error(q, &t100).unwrap();
            assert!(err < 0.05, "{q}: max relative error {err}");
        }
    }

    #[test]
    fn fixed_costs_follow_the_query_structure() {
        let (t100, _) =
            run_sweep(BenchConfig::new(DatabaseClass::Temporal, 100), 1);
        assert_eq!(fixed_cost("Q01", &t100), 0);
        assert_eq!(fixed_cost("Q02", &t100), 1); // one directory level
        assert!(fixed_cost("Q10", &t100) >= 1024); // per-substitution dir
    }

    #[test]
    fn space_growth_summary() {
        let g = space_growth(&[128, 384, 640]);
        assert_eq!(g.size0, 128);
        assert_eq!(g.size_n, 640);
        assert!((g.growth_per_update - 256.0).abs() < 1e-9);
        assert!((g.growth_rate - 2.0).abs() < 1e-9);
    }
}
