//! The twelve benchmark queries of Figure 4, adapted per database class
//! exactly as the paper prescribes: "For a static database, the 'when'
//! clause in these queries are neither necessary nor applicable. For a
//! rollback database, we use an as of clause instead of the when clause."
//! Q03/Q04 (rollback queries) apply only to rollback and temporal
//! databases; Q11/Q12 only to temporal ones.

use crate::workload::{AMOUNT_H, AMOUNT_I, PROBE_ID};
use tdbms_kernel::DatabaseClass;

/// All twelve query identifiers, in order.
pub const QUERY_IDS: [&str; 12] = [
    "Q01", "Q02", "Q03", "Q04", "Q05", "Q06", "Q07", "Q08", "Q09", "Q10",
    "Q11", "Q12",
];

/// One benchmark query, ready to execute.
#[derive(Debug, Clone)]
pub struct BenchQuery {
    /// "Q01" … "Q12".
    pub id: &'static str,
    /// The TQuel text for the given database class.
    pub tquel: String,
}

/// What each query characterizes (used in reports).
pub fn describe(id: &str) -> &'static str {
    match id {
        "Q01" => "version scan, hashed file, given key",
        "Q02" => "version scan, ISAM file, given key",
        "Q03" => "rollback query, hashed file (sequential scan)",
        "Q04" => "rollback query, ISAM file (sequential scan)",
        "Q05" => "static query, hashed file, given key",
        "Q06" => "static query, ISAM file, given key",
        "Q07" => "static query, hashed file, non-key (sequential scan)",
        "Q08" => "static query, ISAM file, non-key (sequential scan)",
        "Q09" => "join of current versions, hashed inner (tuple subst.)",
        "Q10" => "join of current versions, ISAM inner (tuple subst.)",
        "Q11" => "temporal join (nested sequential scan), rolled back",
        "Q12" => "all TQuel clauses combined",
        _ => "unknown",
    }
}

/// The benchmark query `id` for the given class, or `None` when the paper
/// marks it "not applicable".
pub fn query_for(id: &str, class: DatabaseClass) -> Option<BenchQuery> {
    use DatabaseClass::*;
    // The "current version" qualifier of the static queries, per class.
    let current_h: &str = match class {
        Static => "",
        Rollback => r#" as of "now""#,
        Historical | Temporal => r#" when h overlap "now""#,
    };
    let current_i: &str = match class {
        Static => "",
        Rollback => r#" as of "now""#,
        Historical | Temporal => r#" when i overlap "now""#,
    };
    let text = match id {
        "Q01" => format!("retrieve (h.id, h.seq) where h.id = {PROBE_ID}"),
        "Q02" => format!("retrieve (i.id, i.seq) where i.id = {PROBE_ID}"),
        "Q03" => {
            if !class.has_transaction_time() {
                return None;
            }
            r#"retrieve (h.id, h.seq) as of "08:00 1/1/80""#.to_string()
        }
        "Q04" => {
            if !class.has_transaction_time() {
                return None;
            }
            r#"retrieve (i.id, i.seq) as of "08:00 1/1/80""#.to_string()
        }
        "Q05" => format!(
            "retrieve (h.id, h.seq) where h.id = {PROBE_ID}{current_h}"
        ),
        "Q06" => format!(
            "retrieve (i.id, i.seq) where i.id = {PROBE_ID}{current_i}"
        ),
        "Q07" => format!(
            "retrieve (h.id, h.seq) where h.amount = {AMOUNT_H}{current_h}"
        ),
        "Q08" => format!(
            "retrieve (i.id, i.seq) where i.amount = {AMOUNT_I}{current_i}"
        ),
        "Q09" => match class {
            Static => {
                "retrieve (h.id, i.id, i.amount) where h.id = i.amount"
                    .to_string()
            }
            Rollback => {
                "retrieve (h.id, i.id, i.amount) where h.id = i.amount \
                 as of \"now\""
                    .to_string()
            }
            Historical | Temporal => {
                "retrieve (h.id, i.id, i.amount) where h.id = i.amount \
                 when h overlap i and i overlap \"now\""
                    .to_string()
            }
        },
        "Q10" => match class {
            Static => {
                "retrieve (i.id, h.id, h.amount) where i.id = h.amount"
                    .to_string()
            }
            Rollback => {
                "retrieve (i.id, h.id, h.amount) where i.id = h.amount \
                 as of \"now\""
                    .to_string()
            }
            Historical | Temporal => {
                "retrieve (i.id, h.id, h.amount) where i.id = h.amount \
                 when h overlap i and h overlap \"now\""
                    .to_string()
            }
        },
        "Q11" => {
            if class != Temporal {
                return None;
            }
            r#"retrieve (h.id, h.seq, i.id, i.seq, i.amount)
               valid from start of h to end of i
               when start of h precede i
               as of "4:00 1/1/80""#
                .to_string()
        }
        "Q12" => {
            if class != Temporal {
                return None;
            }
            format!(
                r#"retrieve (h.id, h.seq, i.id, i.seq, i.amount)
                   valid from start of (h overlap i) to end of (h extend i)
                   where h.id = {PROBE_ID} and i.amount = {AMOUNT_I}
                   when h overlap i
                   as of "now""#
            )
        }
        _ => return None,
    };
    Some(BenchQuery {
        id: QUERY_IDS.iter().find(|q| **q == id)?,
        tquel: text,
    })
}

/// Every applicable query for a class, in Q01..Q12 order.
pub fn queries_for(class: DatabaseClass) -> Vec<BenchQuery> {
    QUERY_IDS
        .iter()
        .filter_map(|id| query_for(id, class))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applicability_matches_figure7() {
        assert_eq!(queries_for(DatabaseClass::Static).len(), 8);
        assert_eq!(queries_for(DatabaseClass::Rollback).len(), 10);
        assert_eq!(queries_for(DatabaseClass::Historical).len(), 8);
        assert_eq!(queries_for(DatabaseClass::Temporal).len(), 12);
    }

    #[test]
    fn all_query_texts_parse() {
        for class in DatabaseClass::ALL {
            for q in queries_for(class) {
                tdbms_tquel::parse_statement(&q.tquel).unwrap_or_else(
                    |e| panic!("{} for {class}: {e}\n{}", q.id, q.tquel),
                );
            }
        }
    }

    #[test]
    fn rollback_queries_substitute_as_of_for_when() {
        let q5 = query_for("Q05", DatabaseClass::Rollback).unwrap();
        assert!(q5.tquel.contains("as of"));
        assert!(!q5.tquel.contains("when"));
        let q5t = query_for("Q05", DatabaseClass::Temporal).unwrap();
        assert!(q5t.tquel.contains("when h overlap"));
    }
}
