//! In-repo wall-clock measurement for the `harness = false` benchmark
//! binaries (the registry `criterion` crate is not available offline).
//!
//! The paper's metric is page I/O, which `tdbms-storage::iostats` counts
//! exactly and deterministically; wall-clock numbers here are the
//! secondary check that page counts track runtime on the in-memory
//! engine. Accordingly the statistics are deliberately simple: run a
//! closure N times, report min / median / mean / max of the per-
//! iteration durations. Median over mean is the headline number — it is
//! robust against the occasional scheduler hiccup.

use std::time::{Duration, Instant};

/// Summary statistics over N timed iterations.
#[derive(Debug, Clone, Copy)]
pub struct TimingStats {
    /// Number of timed iterations.
    pub iters: u32,
    /// Fastest iteration.
    pub min: Duration,
    /// Median iteration (the headline number).
    pub median: Duration,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Slowest iteration.
    pub max: Duration,
}

impl TimingStats {
    /// `"   12.3 µs … 14.0 µs (median 13.1 µs over 10 iters)"`-style cell.
    pub fn to_row(&self) -> String {
        format!(
            "{:>12} {:>12} {:>12} {:>12}",
            fmt_duration(self.min),
            fmt_duration(self.median),
            fmt_duration(self.mean),
            fmt_duration(self.max),
        )
    }
}

/// Render a duration with a unit that keeps 3–4 significant digits.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Time `iters` runs of `f` (after one untimed warm-up run) and return
/// the summary. The closure's return value is passed through
/// [`std::hint::black_box`] so the compiler cannot elide the work.
pub fn time_n<R>(iters: u32, mut f: impl FnMut() -> R) -> TimingStats {
    assert!(iters > 0, "time_n needs at least one iteration");
    std::hint::black_box(f());
    let mut samples: Vec<Duration> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed()
        })
        .collect();
    samples.sort_unstable();
    let min = samples[0];
    let max = samples[samples.len() - 1];
    let median = if samples.len() % 2 == 1 {
        samples[samples.len() / 2]
    } else {
        (samples[samples.len() / 2 - 1] + samples[samples.len() / 2]) / 2
    };
    let mean = samples.iter().sum::<Duration>() / iters;
    TimingStats {
        iters,
        min,
        median,
        mean,
        max,
    }
}

/// Print the header row matching [`TimingStats::to_row`].
pub fn print_header(group: &str) {
    println!("\n{group}");
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>12}",
        "benchmark", "min", "median", "mean", "max"
    );
}

/// Run and print one named benchmark under the current group.
pub fn bench<R>(name: &str, iters: u32, f: impl FnMut() -> R) {
    let stats = time_n(iters, f);
    println!("{name:<24} {}", stats.to_row());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_ordered_and_counted() {
        let mut n = 0u64;
        let s = time_n(9, || {
            n += 1;
            std::thread::sleep(Duration::from_micros(50));
            n
        });
        assert_eq!(s.iters, 9);
        // warm-up + 9 timed runs
        assert_eq!(n, 10);
        assert!(s.min <= s.median && s.median <= s.max);
        assert!(s.min <= s.mean && s.mean <= s.max);
        assert!(s.min >= Duration::from_micros(50));
    }

    #[test]
    fn median_of_even_sample_count_averages_middle_pair() {
        let s = time_n(2, || std::thread::sleep(Duration::from_micros(10)));
        assert!(s.median >= s.min && s.median <= s.max);
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(42)), "42 ns");
        assert_eq!(fmt_duration(Duration::from_micros(42)), "42.0 µs");
        assert_eq!(fmt_duration(Duration::from_millis(42)), "42.0 ms");
        assert_eq!(fmt_duration(Duration::from_secs(42)), "42.00 s");
    }
}
