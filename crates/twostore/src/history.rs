//! The history store: where non-current versions live.
//!
//! Two layouts, as in Figure 10 of the paper:
//!
//! * [`HistoryStore::Simple`] — an append-only heap. Cheap to maintain
//!   (one insert per superseded version) but a version scan for one tuple
//!   must read every history page.
//! * [`HistoryStore::Clustered`] — the history versions of each tuple are
//!   clustered into pages owned by that tuple, with an in-memory directory
//!   from key to its cluster's pages. A version scan reads only
//!   `ceil(versions / capacity)` pages — the paper's "28 history versions
//!   into 4 pages".
//!
//! Because history versions are never updated in place, both layouts are
//! strictly append-only (write-once-media friendly, as the paper notes).

use tdbms_kernel::{Result, TimeVal};
use tdbms_storage::{
    page_capacity, ClusteredHistory, FileId, HeapFile, KeySpec, Pager,
};

/// The two history-store layouts.
#[derive(Debug)]
pub enum HistoryStore {
    /// Append-only heap of history versions.
    Simple {
        /// The heap file.
        heap: HeapFile,
        /// Key location within a row (used only to answer keyed scans by
        /// filtering).
        key: KeySpec,
    },
    /// Per-tuple clustered pages with an in-memory cluster directory —
    /// the same structure the engine's online reorganization migrates
    /// cold versions into, so the layout (and its keyed-access cost)
    /// comes from [`ClusteredHistory`].
    Clustered(ClusteredHistory),
}

impl HistoryStore {
    /// Create an empty simple history store.
    pub fn simple(
        pager: &Pager,
        row_width: usize,
        key: KeySpec,
    ) -> Result<Self> {
        Ok(HistoryStore::Simple {
            heap: HeapFile::create(pager, row_width)?,
            key,
        })
    }

    /// Create an empty clustered history store.
    pub fn clustered(
        pager: &Pager,
        row_width: usize,
        key: KeySpec,
    ) -> Result<Self> {
        Ok(HistoryStore::Clustered(ClusteredHistory::create(
            pager, row_width, key,
        )?))
    }

    /// The underlying file.
    pub fn file_id(&self) -> FileId {
        match self {
            HistoryStore::Simple { heap, .. } => heap.file,
            HistoryStore::Clustered(h) => h.file_id(),
        }
    }

    /// Total pages of history.
    pub fn total_pages(&self, pager: &Pager) -> Result<u32> {
        pager.page_count(self.file_id())
    }

    /// Append one superseded version.
    pub fn push(&mut self, pager: &Pager, row: &[u8]) -> Result<()> {
        match self {
            HistoryStore::Simple { heap, .. } => {
                heap.insert(pager, row).map(|_| ())
            }
            // The benchmark store does not gate reads on the stop-time
            // high-water mark, so pushes leave it at BEGINNING.
            HistoryStore::Clustered(h) => {
                h.push(pager, row, TimeVal::BEGINNING)
            }
        }
    }

    /// Visit every history version of `key_bytes`, in insertion order.
    /// Simple layout scans the whole store; clustered reads only the
    /// tuple's own pages.
    pub fn for_key(
        &self,
        pager: &Pager,
        key_bytes: &[u8],
        mut f: impl FnMut(&[u8]) -> Result<()>,
    ) -> Result<()> {
        match self {
            HistoryStore::Simple { heap, key } => {
                let mut cur = heap.scan();
                while let Some((_, row)) = cur.next(pager, heap)? {
                    if key.compare(key.extract(&row), key_bytes)
                        == std::cmp::Ordering::Equal
                    {
                        f(&row)?;
                    }
                }
                Ok(())
            }
            HistoryStore::Clustered(h) => h.for_key(pager, key_bytes, f),
        }
    }

    /// Visit every history version.
    pub fn for_all(
        &self,
        pager: &Pager,
        mut f: impl FnMut(&[u8]) -> Result<()>,
    ) -> Result<()> {
        match self {
            HistoryStore::Simple { heap, .. } => {
                let mut cur = heap.scan();
                while let Some((_, row)) = cur.next(pager, heap)? {
                    f(&row)?;
                }
                Ok(())
            }
            HistoryStore::Clustered(h) => h.for_all(pager, f),
        }
    }

    /// Pages a keyed history access touches (without performing it):
    /// `ceil(versions / capacity)` for a clustered store.
    pub fn cluster_pages(&self, key_bytes: &[u8]) -> Option<u32> {
        match self {
            HistoryStore::Simple { .. } => None,
            HistoryStore::Clustered(h) => Some(h.cluster_pages(key_bytes)),
        }
    }

    /// Row capacity per page for this store's rows.
    pub fn rows_per_page(&self) -> usize {
        match self {
            HistoryStore::Simple { heap, .. } => {
                page_capacity(heap.row_width)
            }
            HistoryStore::Clustered(h) => h.rows_per_page(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdbms_storage::KeyKind;

    const W: usize = 124; // temporal benchmark row width → 8 per page

    fn row(id: i32, tag: u8) -> Vec<u8> {
        let mut r = vec![tag; W];
        r[..4].copy_from_slice(&id.to_le_bytes());
        r
    }

    fn key() -> KeySpec {
        KeySpec {
            offset: 0,
            len: 4,
            kind: KeyKind::I4,
        }
    }

    fn fill(store: &mut HistoryStore, pager: &Pager) {
        // 28 versions each for ids 1..=4, interleaved by round (the order
        // updates actually produce).
        for round in 0..28u8 {
            for id in 1..=4 {
                store.push(pager, &row(id, round)).unwrap();
            }
        }
    }

    #[test]
    fn clustered_version_access_reads_only_the_cluster() {
        let pager = Pager::in_memory();
        let mut store = HistoryStore::clustered(&pager, W, key()).unwrap();
        fill(&mut store, &pager);
        // 28 versions at 8/page = 4 pages per tuple — the paper's number.
        assert_eq!(store.cluster_pages(&1i32.to_le_bytes()), Some(4));
        pager.invalidate_buffers().unwrap();
        pager.reset_stats();
        let mut n = 0;
        store
            .for_key(&pager, &2i32.to_le_bytes(), |_| {
                n += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(n, 28);
        let io = pager.stats().of(store.file_id());
        assert_eq!(io.reads, 4);
        // A cluster walk is strictly sequential: with the paper's single
        // frame every one of the 4 page accesses is a cold miss, and the
        // v2 ledger classifies each exactly once.
        assert_eq!(io.accesses, 4);
        assert_eq!(io.hits, 0);
        assert!(io.is_consistent());
    }

    #[test]
    fn simple_version_access_scans_everything() {
        let pager = Pager::in_memory();
        let mut store = HistoryStore::simple(&pager, W, key()).unwrap();
        fill(&mut store, &pager);
        pager.invalidate_buffers().unwrap();
        pager.reset_stats();
        let mut n = 0;
        store
            .for_key(&pager, &2i32.to_le_bytes(), |_| {
                n += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(n, 28);
        // 4 tuples × 28 versions / 8 per page = 14 pages, all read.
        let io = pager.stats().of(store.file_id());
        assert_eq!(io.reads, 14);
        // The scan faults each page once and then re-accesses it per row
        // while it stays resident: 112 rows + 14 chain hops = 126 buffered
        // accesses, only 14 of them misses — sequential scans are *not*
        // thrash-bound even at the paper's 1-frame cap.
        assert_eq!((io.accesses, io.hits), (126, 112));
        assert!(io.is_consistent());
    }

    #[test]
    fn both_layouts_hold_the_same_versions() {
        let pager = Pager::in_memory();
        let mut simple = HistoryStore::simple(&pager, W, key()).unwrap();
        let mut clustered =
            HistoryStore::clustered(&pager, W, key()).unwrap();
        fill(&mut simple, &pager);
        fill(&mut clustered, &pager);
        let collect = |s: &HistoryStore, pager: &Pager| {
            let mut rows: Vec<Vec<u8>> = Vec::new();
            s.for_all(pager, |r| {
                rows.push(r.to_vec());
                Ok(())
            })
            .unwrap();
            rows.sort();
            rows
        };
        assert_eq!(collect(&simple, &pager), collect(&clustered, &pager));
    }

    #[test]
    fn unknown_key_visits_nothing() {
        let pager = Pager::in_memory();
        let mut store = HistoryStore::clustered(&pager, W, key()).unwrap();
        fill(&mut store, &pager);
        let mut n = 0;
        store
            .for_key(&pager, &99i32.to_le_bytes(), |_| {
                n += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(n, 0);
        assert_eq!(store.cluster_pages(&99i32.to_le_bytes()), Some(0));
    }
}
