//! # tdbms-twostore
//!
//! The performance enhancements proposed in Section 6 of the paper,
//! implemented and measurable (the paper only *estimated* them):
//!
//! * [`TwoLevelStore`] — current versions in a keyed primary store updated
//!   in place, superseded versions in an append-only history store. Static
//!   queries touch only the primary store, so their cost stops growing
//!   with the update count.
//! * [`HistoryStore`] — simple (heap) or clustered per-tuple layout for
//!   history versions; clustering turns a version scan from "length of an
//!   overflow chain" into "ceil(versions / page capacity)".
//! * [`SecondaryIndex`] — heap- or hash-structured indexes on non-key
//!   attributes, at one level (all versions) or two levels (current +
//!   history separately), reproducing the Figure 10 comparison.

pub mod history;
pub mod twolevel;

/// Secondary indexing lives in `tdbms-storage` (the query processor uses
/// it too); re-exported here because it is conceptually a Section 6
/// enhancement.
pub use tdbms_storage::secondary;

pub use history::HistoryStore;
pub use secondary::{i4_attr, IndexStructure, SecondaryIndex};
pub use twolevel::{is_current_row, HistoryLayout, TwoLevelStore};
