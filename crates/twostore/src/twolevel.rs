//! The two-level store of Section 6: current versions in a *primary
//! store*, everything else in a *history store*.
//!
//! "The primary store contains current versions which can satisfy all
//! non-temporal queries … The history store holds the remaining history
//! versions. This scheme to separate current data from the bulk of history
//! data can minimize the overhead for non-temporal queries, and at the
//! same time provide a fast access path for temporal queries."
//!
//! The primary store is an ordinary keyed file (hash or ISAM) holding
//! exactly one version per tuple, updated *in place* on replace — so its
//! size, and with it the cost of every static query, stays constant no
//! matter how many updates the relation has seen. Superseded versions move
//! to the [`HistoryStore`].

use crate::history::HistoryStore;
use tdbms_kernel::{
    Error, Result, RowCodec, Schema, TemporalAttr, TimeVal,
};
use tdbms_storage::{
    AccessMethod, HashFile, HashFn, IsamFile, KeySpec, Pager, RelFile,
};

/// Which history layout a store uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistoryLayout {
    /// Append-only heap.
    Simple,
    /// Per-tuple clustered pages.
    Clustered,
}

/// A temporal (or historical) relation stored as primary + history.
#[derive(Debug)]
pub struct TwoLevelStore {
    schema: Schema,
    codec: RowCodec,
    /// The primary store: one current version per tuple.
    primary: RelFile,
    /// The history store.
    history: HistoryStore,
    n_current: u64,
    n_history: u64,
}

impl TwoLevelStore {
    /// Partition `rows` (full stored rows of `schema`) into a two-level
    /// store. `schema` must carry valid and/or transaction time.
    #[allow(clippy::too_many_arguments)]
    pub fn build_from_rows(
        pager: &Pager,
        schema: &Schema,
        rows: &[Vec<u8>],
        key_attr: usize,
        primary_method: AccessMethod,
        fillfactor: u8,
        hashfn: HashFn,
        layout: HistoryLayout,
    ) -> Result<Self> {
        if !schema.class().has_valid_time()
            && !schema.class().has_transaction_time()
        {
            return Err(Error::NotApplicable(
                "a two-level store needs a versioned relation".into(),
            ));
        }
        let codec = RowCodec::new(schema);
        let key = KeySpec::for_attr(&codec, key_attr);
        let width = schema.row_width();

        let mut current: Vec<Vec<u8>> = Vec::new();
        let mut past: Vec<&Vec<u8>> = Vec::new();
        for row in rows {
            if is_current_row(schema, &codec, row) {
                current.push(row.clone());
            } else {
                past.push(row);
            }
        }

        let primary = match primary_method {
            AccessMethod::Hash => RelFile::Hash(HashFile::build(
                pager, &current, width, key, hashfn, fillfactor,
            )?),
            AccessMethod::Isam => RelFile::Isam(IsamFile::build(
                pager, &current, width, key, fillfactor,
            )?),
            AccessMethod::Heap => {
                return Err(Error::NotApplicable(
                    "the primary store must be keyed (hash or isam)".into(),
                ))
            }
        };
        let mut history = match layout {
            HistoryLayout::Simple => {
                HistoryStore::simple(pager, width, key)?
            }
            HistoryLayout::Clustered => {
                HistoryStore::clustered(pager, width, key)?
            }
        };
        let n_history = past.len() as u64;
        for row in past {
            history.push(pager, row)?;
        }
        pager.flush_all()?;
        Ok(TwoLevelStore {
            schema: schema.clone(),
            codec,
            primary,
            history,
            n_current: current.len() as u64,
            n_history,
        })
    }

    /// The primary store file (for running static queries against).
    pub fn primary(&self) -> &RelFile {
        &self.primary
    }

    /// The history store.
    pub fn history(&self) -> &HistoryStore {
        &self.history
    }

    /// The schema of stored rows.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The row codec.
    pub fn codec(&self) -> &RowCodec {
        &self.codec
    }

    /// Count of current versions.
    pub fn current_count(&self) -> u64 {
        self.n_current
    }

    /// Count of history versions.
    pub fn history_count(&self) -> u64 {
        self.n_history
    }

    /// Total pages (primary + history).
    pub fn total_pages(&self, pager: &Pager) -> Result<u32> {
        Ok(self.primary.total_pages(pager)?
            + self.history.total_pages(pager)?)
    }

    /// Fetch the current version of `key_bytes` from the primary store.
    pub fn current_for_key(
        &self,
        pager: &Pager,
        key_bytes: &[u8],
    ) -> Result<Option<(tdbms_storage::TupleId, Vec<u8>)>> {
        let mut cur =
            self.primary.lookup_eq(pager, key_bytes)?.ok_or_else(|| {
                Error::Internal("primary store is keyed".into())
            })?;
        cur.next(pager, &self.primary)
    }

    /// Version scan: the current version plus every history version of
    /// one tuple — the two-level answer to the paper's Q01/Q02.
    pub fn versions_for_key(
        &self,
        pager: &Pager,
        key_bytes: &[u8],
    ) -> Result<Vec<Vec<u8>>> {
        let mut out = Vec::new();
        if let Some((_, row)) = self.current_for_key(pager, key_bytes)? {
            out.push(row);
        }
        self.history.for_key(pager, key_bytes, |row| {
            out.push(row.to_vec());
            Ok(())
        })?;
        Ok(out)
    }

    /// Append a brand-new tuple (its row must be current-shaped: open
    /// valid/transaction end).
    pub fn append(&mut self, pager: &Pager, row: &[u8]) -> Result<()> {
        if !is_current_row(&self.schema, &self.codec, row) {
            return Err(Error::BadValue(
                "appended version must be current (open-ended)".into(),
            ));
        }
        self.primary.insert(pager, row)?;
        self.n_current += 1;
        Ok(())
    }

    /// Replace the current version of `key_bytes`: the temporal-relation
    /// semantics of Section 4, restaged for the two-level layout. The old
    /// version (stamped dead) and its closed copy go to the history store;
    /// the new version overwrites the primary slot **in place**, so the
    /// primary store never grows.
    pub fn replace_current(
        &mut self,
        pager: &Pager,
        key_bytes: &[u8],
        now: TimeVal,
        update_explicit: impl FnOnce(&mut Vec<u8>),
    ) -> Result<bool> {
        let Some((tid, old)) = self.current_for_key(pager, key_bytes)?
        else {
            return Ok(false);
        };
        let has_tx = self.schema.class().has_transaction_time();
        let ts_stop =
            self.schema.temporal_index(TemporalAttr::TransactionStop);
        let ts_start =
            self.schema.temporal_index(TemporalAttr::TransactionStart);
        let valid_from =
            self.schema.temporal_index(TemporalAttr::ValidFrom);
        let valid_to = self.schema.temporal_index(TemporalAttr::ValidTo);

        // Dead original (transaction-time relations only).
        if has_tx {
            let mut dead = old.clone();
            self.codec.put_time(&mut dead, ts_stop.expect("tx"), now);
            self.history.push(pager, &dead)?;
            self.n_history += 1;
        }
        // Closed copy: the version was valid until now.
        if let Some(vt) = valid_to {
            let mut closed = old.clone();
            self.codec.put_time(&mut closed, vt, now);
            if let (Some(s), Some(e)) = (ts_start, ts_stop) {
                self.codec.put_time(&mut closed, s, now);
                self.codec.put_time(&mut closed, e, TimeVal::FOREVER);
            }
            self.history.push(pager, &closed)?;
            self.n_history += 1;
        }
        // New current version, in place.
        let mut fresh = old;
        update_explicit(&mut fresh);
        if let Some(vf) = valid_from {
            self.codec.put_time(&mut fresh, vf, now);
        }
        if let Some(vt) = valid_to {
            self.codec.put_time(&mut fresh, vt, TimeVal::FOREVER);
        }
        if let (Some(s), Some(e)) = (ts_start, ts_stop) {
            self.codec.put_time(&mut fresh, s, now);
            self.codec.put_time(&mut fresh, e, TimeVal::FOREVER);
        }
        self.primary.update(pager, tid, &fresh)?;
        Ok(true)
    }

    /// Delete the current version of `key_bytes`: history receives the
    /// dead original and (for valid-time relations) the closed copy; the
    /// primary slot is freed.
    pub fn delete_current(
        &mut self,
        pager: &Pager,
        key_bytes: &[u8],
        now: TimeVal,
    ) -> Result<bool> {
        let Some((tid, old)) = self.current_for_key(pager, key_bytes)?
        else {
            return Ok(false);
        };
        let has_tx = self.schema.class().has_transaction_time();
        let ts_stop =
            self.schema.temporal_index(TemporalAttr::TransactionStop);
        let ts_start =
            self.schema.temporal_index(TemporalAttr::TransactionStart);
        let valid_to = self.schema.temporal_index(TemporalAttr::ValidTo);
        if has_tx {
            let mut dead = old.clone();
            self.codec.put_time(&mut dead, ts_stop.expect("tx"), now);
            self.history.push(pager, &dead)?;
            self.n_history += 1;
        }
        if let Some(vt) = valid_to {
            let mut closed = old.clone();
            self.codec.put_time(&mut closed, vt, now);
            if let (Some(s), Some(e)) = (ts_start, ts_stop) {
                self.codec.put_time(&mut closed, s, now);
                self.codec.put_time(&mut closed, e, TimeVal::FOREVER);
            }
            self.history.push(pager, &closed)?;
            self.n_history += 1;
        }
        self.primary.delete(pager, tid)?;
        self.n_current -= 1;
        Ok(true)
    }
}

/// Is this stored row a current version (open-ended in both the times its
/// schema records)?
pub fn is_current_row(
    schema: &Schema,
    codec: &RowCodec,
    row: &[u8],
) -> bool {
    if let Some(i) = schema.temporal_index(TemporalAttr::TransactionStop) {
        if !codec.get_time(row, i).is_forever() {
            return false;
        }
    }
    if let Some(i) = schema.temporal_index(TemporalAttr::ValidTo) {
        if !codec.get_time(row, i).is_forever() {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdbms_kernel::{
        AttrDef, DatabaseClass, Domain, TemporalKind, Value,
    };

    fn schema() -> Schema {
        Schema::new(
            vec![
                AttrDef::new("id", Domain::I4),
                AttrDef::new("amount", Domain::I4),
                AttrDef::new("seq", Domain::I4),
                AttrDef::new("string", Domain::Char(96)),
            ],
            DatabaseClass::Temporal,
            TemporalKind::Interval,
        )
        .unwrap()
    }

    fn initial_rows(schema: &Schema, n: i64) -> (RowCodec, Vec<Vec<u8>>) {
        let codec = RowCodec::new(schema);
        let t0 = TimeVal::from_ymd(1980, 1, 1).unwrap();
        let rows = (1..=n)
            .map(|i| {
                codec
                    .encode(&[
                        Value::Int(i),
                        Value::Int(i * 100),
                        Value::Int(0),
                        Value::Str("x".into()),
                        Value::Time(t0),
                        Value::Time(TimeVal::FOREVER),
                        Value::Time(t0),
                        Value::Time(TimeVal::FOREVER),
                    ])
                    .unwrap()
            })
            .collect();
        (codec, rows)
    }

    fn store_with_updates(
        pager: &Pager,
        layout: HistoryLayout,
        n: i64,
        rounds: u32,
    ) -> (TwoLevelStore, RowCodec) {
        let schema = schema();
        let (codec, rows) = initial_rows(&schema, n);
        let mut store = TwoLevelStore::build_from_rows(
            pager,
            &schema,
            &rows,
            0,
            AccessMethod::Hash,
            100,
            HashFn::Mod,
            layout,
        )
        .unwrap();
        let mut t = TimeVal::from_ymd(1980, 3, 1).unwrap();
        for _ in 0..rounds {
            for id in 1..=n {
                let kb = (id as i32).to_le_bytes();
                let c2 = codec.clone();
                store
                    .replace_current(pager, &kb, t, |row| {
                        let seq = c2.get_i4(row, 2);
                        c2.put(row, 2, &Value::Int(seq as i64 + 1))
                            .unwrap();
                    })
                    .unwrap();
                t = t.saturating_add_secs(60);
            }
        }
        (store, codec)
    }

    #[test]
    fn primary_store_never_grows() {
        let pager = Pager::in_memory();
        let (store, _) =
            store_with_updates(&pager, HistoryLayout::Simple, 64, 0);
        let p0 = store.primary().total_pages(&pager).unwrap();
        let pager = Pager::in_memory();
        let (store, _) =
            store_with_updates(&pager, HistoryLayout::Simple, 64, 14);
        assert_eq!(store.primary().total_pages(&pager).unwrap(), p0);
        // History took the 2-per-replace versions.
        assert_eq!(store.history_count(), 2 * 14 * 64);
    }

    #[test]
    fn static_query_cost_is_constant_in_update_count() {
        for rounds in [0, 5, 14] {
            let pager = Pager::in_memory();
            let (store, codec) = store_with_updates(
                &pager,
                HistoryLayout::Simple,
                64,
                rounds,
            );
            pager.invalidate_buffers().unwrap();
            pager.reset_stats();
            let (_, row) = store
                .current_for_key(&pager, &7i32.to_le_bytes())
                .unwrap()
                .expect("current version exists");
            assert_eq!(codec.get_i4(&row, 2) as u32, rounds);
            // Exactly one page, at any update count — the paper's Q05
            // improvement.
            assert_eq!(
                pager.stats().of(store.primary().file_id()).reads,
                1
            );
            assert_eq!(
                pager.stats().of(store.history().file_id()).reads,
                0
            );
        }
    }

    #[test]
    fn clustered_version_scan_costs_cluster_pages_plus_one() {
        let pager = Pager::in_memory();
        let (store, _) =
            store_with_updates(&pager, HistoryLayout::Clustered, 64, 14);
        pager.invalidate_buffers().unwrap();
        pager.reset_stats();
        let versions =
            store.versions_for_key(&pager, &7i32.to_le_bytes()).unwrap();
        // 1 current + 28 history.
        assert_eq!(versions.len(), 29);
        // 1 primary page + ceil(28/8) = 4 cluster pages — Figure 10's "5".
        let reads = pager.stats().of(store.primary().file_id()).reads
            + pager.stats().of(store.history().file_id()).reads;
        assert_eq!(reads, 5);
        // The v2 ledger behind that "5": each page is faulted once (5
        // misses) and re-accessed while resident for the remaining rows.
        // The 4-page cluster walk turns over the history file's single
        // frame 3 times, but every eviction is clean — sequential access
        // never pays the cap again, so the paper's 1-frame setup costs a
        // clustered scan nothing.
        let io = pager.stats();
        assert_eq!(io.total_reads(), 5);
        assert_eq!(io.total_accesses(), io.total_hits() + 5);
        assert_eq!(io.of(store.primary().file_id()).evictions, 0);
        assert_eq!(io.of(store.history().file_id()).evictions, 3);
        assert!(io.is_consistent());
    }

    #[test]
    fn version_multiset_matches_expected_counts() {
        let pager = Pager::in_memory();
        let (store, codec) =
            store_with_updates(&pager, HistoryLayout::Clustered, 8, 3);
        // Per tuple: 1 current + 2 per round history.
        for id in 1..=8i32 {
            let versions =
                store.versions_for_key(&pager, &id.to_le_bytes()).unwrap();
            assert_eq!(versions.len(), 1 + 2 * 3, "tuple {id}");
            // Current version carries the final seq.
            assert_eq!(codec.get_i4(&versions[0], 2), 3);
        }
    }

    #[test]
    fn delete_moves_versions_to_history() {
        let pager = Pager::in_memory();
        let (mut store, _) =
            store_with_updates(&pager, HistoryLayout::Simple, 8, 1);
        let t = TimeVal::from_ymd(1981, 1, 1).unwrap();
        assert!(store
            .delete_current(&pager, &3i32.to_le_bytes(), t)
            .unwrap());
        assert!(!store
            .delete_current(&pager, &3i32.to_le_bytes(), t)
            .unwrap());
        assert_eq!(store.current_count(), 7);
        assert!(store
            .current_for_key(&pager, &3i32.to_le_bytes())
            .unwrap()
            .is_none());
        // 2 from the replace round + 2 from the delete.
        let versions =
            store.versions_for_key(&pager, &3i32.to_le_bytes()).unwrap();
        assert_eq!(versions.len(), 4);
    }

    #[test]
    fn rejects_heap_primary_and_static_schema() {
        let pager = Pager::in_memory();
        let s = schema();
        let (_, rows) = initial_rows(&s, 4);
        assert!(TwoLevelStore::build_from_rows(
            &pager,
            &s,
            &rows,
            0,
            AccessMethod::Heap,
            100,
            HashFn::Mod,
            HistoryLayout::Simple,
        )
        .is_err());
        let static_schema = Schema::new(
            vec![AttrDef::new("id", Domain::I4)],
            DatabaseClass::Static,
            TemporalKind::Interval,
        )
        .unwrap();
        assert!(TwoLevelStore::build_from_rows(
            &pager,
            &static_schema,
            &[],
            0,
            AccessMethod::Hash,
            100,
            HashFn::Mod,
            HistoryLayout::Simple,
        )
        .is_err());
    }
}
