//! # tdbms-prop
//!
//! A minimal, dependency-free property-testing harness built on the
//! kernel's deterministic [`Prng`]. It replaces the registry `proptest`
//! crate for this workspace so the build is hermetic, and it trades
//! proptest's shrinking for something the paper reproduction values
//! more: *bit-stable replay*. Every case is generated from a seed that
//! is a pure function of the property name and case index, so a failure
//! seen anywhere reproduces everywhere.
//!
//! ## Usage
//!
//! ```
//! use tdbms_prop::{check, Gen};
//!
//! // In a test file this sits under #[test].
//! check("sums_commute", 64, |g: &mut Gen| {
//!     let a = g.range(-1000i64..1000);
//!     let b = g.range(-1000i64..1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```
//!
//! On failure the harness panics with the property name, case index and
//! case seed:
//!
//! ```text
//! property 'sums_commute' failed on case 17 of 64 (case seed
//! 0x243f6a8885a308d3); replay just this case with
//! TDBMS_PROP_SEED=0x243f6a8885a308d3
//! ```
//!
//! ## Environment knobs
//!
//! * `TDBMS_PROP_SEED=0x…` — run each property once, on exactly that
//!   case seed (replay of a reported failure).
//! * `TDBMS_PROP_CASES=n` — override every property's case count (e.g.
//!   a nightly soak with 10 000 cases).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

pub use tdbms_kernel::prng::{Prng, SampleRange};

/// Per-case generator handed to property closures. A thin wrapper over
/// [`Prng`] with the combinators the test suites need.
pub struct Gen {
    rng: Prng,
    /// Seed this generator was created from (printed on failure).
    seed: u64,
}

impl Gen {
    /// Generator for one case seed.
    pub fn from_seed(seed: u64) -> Self {
        Gen {
            rng: Prng::seed_from_u64(seed),
            seed,
        }
    }

    /// The case seed (for embedding in custom failure messages).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Direct access to the underlying generator.
    pub fn rng(&mut self) -> &mut Prng {
        &mut self.rng
    }

    /// Uniform sample from an integer range (`lo..hi` or `lo..=hi`).
    pub fn range<T, R: SampleRange<T>>(&mut self, r: R) -> T {
        self.rng.random_range(r)
    }

    /// Uniform value over a type's whole domain.
    pub fn any_i32(&mut self) -> i32 {
        self.rng.next_u32() as i32
    }

    /// Uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.rng.random_bool()
    }

    /// `Some(f(g))` half the time — proptest's `option::of`.
    pub fn option<T>(
        &mut self,
        f: impl FnOnce(&mut Gen) -> T,
    ) -> Option<T> {
        if self.bool() {
            Some(f(self))
        } else {
            None
        }
    }

    /// Vector with length drawn from `len`, elements from `f` —
    /// proptest's `collection::vec`.
    pub fn vec<T>(
        &mut self,
        len: std::ops::Range<usize>,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.range(len);
        (0..n).map(|_| f(self)).collect()
    }

    /// Uniform choice among the variants produced by `arms` —
    /// proptest's `prop_oneof!`.
    pub fn one_of<T>(
        &mut self,
        arms: &mut [&mut dyn FnMut(&mut Gen) -> T],
    ) -> T {
        let i = self.range(0..arms.len());
        (arms[i])(self)
    }

    /// Uniform element of a slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.range(0..xs.len())]
    }

    /// String of `len` characters drawn uniformly from `alphabet` —
    /// the harness's stand-in for proptest's regex strategies.
    pub fn string_from(
        &mut self,
        alphabet: &[u8],
        len: std::ops::Range<usize>,
    ) -> String {
        let n = self.range(len);
        (0..n).map(|_| *self.pick(alphabet) as char).collect()
    }
}

/// The ASCII alphabet matched by the old `[ -~]`-style regexes minus the
/// TQuel string escapes: every printable character except `"` and `\`.
pub fn printable_no_quotes() -> Vec<u8> {
    (0x20u8..=0x7E)
        .filter(|&b| b != b'"' && b != b'\\')
        .collect()
}

fn env_u64(name: &str) -> Option<u64> {
    let v = std::env::var(name).ok()?;
    let v = v.trim();
    let parsed = if let Some(hex) = v.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        v.parse()
    };
    match parsed {
        Ok(n) => Some(n),
        Err(_) => panic!("{name}={v:?} is not a u64 (decimal or 0x-hex)"),
    }
}

/// FNV-1a, used to give every property its own base stream without
/// manual seed bookkeeping.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Seed of case `i` of property `name`. Public so a debugging session
/// can recompute the seed of any case without running the harness.
pub fn case_seed(name: &str, case: u64) -> u64 {
    let mut s = hash_name(name) ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    tdbms_kernel::prng::splitmix64(&mut s)
}

/// Run `prop` on `cases` generated cases (honoring the environment
/// overrides above). Panics — with the failing case's seed — if any
/// case panics.
pub fn check(name: &str, cases: u32, prop: impl Fn(&mut Gen)) {
    if let Some(seed) = env_u64("TDBMS_PROP_SEED") {
        let mut g = Gen::from_seed(seed);
        prop(&mut g);
        return;
    }
    let cases = env_u64("TDBMS_PROP_CASES").map_or(cases as u64, |n| n);
    for case in 0..cases {
        let seed = case_seed(name, case);
        let mut g = Gen::from_seed(seed);
        let result = catch_unwind(AssertUnwindSafe(|| prop(&mut g)));
        if let Err(payload) = result {
            eprintln!(
                "property '{name}' failed on case {case} of {cases} \
                 (case seed {seed:#018x}); replay just this case with \
                 TDBMS_PROP_SEED={seed:#x}"
            );
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_are_stable_and_distinct() {
        // Pinned: replay instructions in old failure logs must stay valid.
        assert_eq!(case_seed("demo", 0), hash_then(0));
        fn hash_then(case: u64) -> u64 {
            let mut s = super::hash_name("demo")
                ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            tdbms_kernel::prng::splitmix64(&mut s)
        }
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..1000 {
            assert!(seen.insert(case_seed("demo", i)));
            assert!(seen.insert(case_seed("other", i)));
        }
    }

    #[test]
    fn check_runs_every_case_deterministically() {
        use std::cell::RefCell;
        let draws_a = RefCell::new(Vec::new());
        check("det", 16, |g| draws_a.borrow_mut().push(g.range(0u32..100)));
        let draws_b = RefCell::new(Vec::new());
        check("det", 16, |g| draws_b.borrow_mut().push(g.range(0u32..100)));
        assert_eq!(*draws_a.borrow(), *draws_b.borrow());
        assert_eq!(draws_a.borrow().len(), 16);
    }

    #[test]
    fn failure_reports_seed_and_propagates() {
        let res = std::panic::catch_unwind(|| {
            check("always_fails", 4, |g| {
                let v = g.range(0u32..10);
                assert!(v > 100, "forced failure, drew {v}");
            })
        });
        assert!(res.is_err(), "failing property must panic");
    }

    #[test]
    fn combinators_cover_their_ranges() {
        let mut g = Gen::from_seed(42);
        let v = g.vec(5..10, |g| g.range(0i32..3));
        assert!((5..10).contains(&v.len()));
        assert!(v.iter().all(|x| (0..3).contains(x)));
        let s = g.string_from(b"abc", 0..8);
        assert!(s.len() < 8 && s.chars().all(|c| "abc".contains(c)));
        let alpha = printable_no_quotes();
        assert!(!alpha.contains(&b'"') && !alpha.contains(&b'\\'));
        assert_eq!(alpha.len(), 95 - 2);
        let choice = g
            .one_of(&mut [&mut |_g: &mut Gen| 1u8, &mut |_g: &mut Gen| {
                2u8
            }]);
        assert!(choice == 1 || choice == 2);
        let picked = *g.pick(&[10, 20, 30]);
        assert!([10, 20, 30].contains(&picked));
        let mut somes = 0;
        for _ in 0..100 {
            if g.option(|g| g.bool()).is_some() {
                somes += 1;
            }
        }
        assert!((20..80).contains(&somes), "option ~50/50, got {somes}");
    }
}
