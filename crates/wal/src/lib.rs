//! # tdbms-wal
//!
//! A physical-redo write-ahead log with ARIES-lite, redo-only recovery
//! for the temporal DBMS storage engine.
//!
//! ## Protocol
//!
//! The pager runs in *staging* mode: dirty write-backs accumulate in an
//! in-memory overlay and never touch the data files. At commit, the
//! database logs one transaction — `Begin`, the new length of every
//! resized file, the after-image of every dirtied page (each stamped
//! with its record's LSN, in the log *and* in the overlay copy that will
//! eventually reach disk), any deferred file drops, the catalog + clock
//! text, `Commit` — and fsyncs the log. Only then do deferred drops
//! execute physically. A checkpoint writes the overlay through to the
//! data files, fsyncs them, saves the catalog, and truncates the log to
//! a fresh header carrying the next LSN and a snapshot of every file's
//! length.
//!
//! ## Recovery invariants
//!
//! Redo-only suffices because uncommitted page *content* never reaches
//! the data files — only empty appended pages and length changes do, and
//! the log records committed lengths so recovery trims uncommitted
//! tails. On reopen:
//!
//! 1. An empty or torn header means the log is the fresh product of a
//!    checkpoint (which durably materialized everything first): nothing
//!    to redo.
//! 2. The header snapshot restores each listed file's checkpointed
//!    length; then each *committed* transaction replays in order —
//!    lengths, then page images (skipped when the on-disk page already
//!    carries an LSN at least as new), then drops. Records for files
//!    that no longer exist are skipped: a later committed `DropFile`
//!    must have removed them.
//! 3. Parsing stops at the first torn or corrupt record; a transaction
//!    without an intact `Commit` contributes nothing.
//! 4. Replay is idempotent — every step either re-establishes a length,
//!    re-writes an identical image, or re-drops — so recovering twice
//!    equals recovering once, and a crash *during* recovery is no worse
//!    than the original crash.

mod group;
mod log;
mod record;

pub use crate::group::{GroupCommit, GroupCommitConfig};
pub use crate::log::{FaultLog, FileLog, LogStore, MemLog, SharedMemLog};
pub use crate::record::{
    encode_header, fnv64, parse_header, parse_records, Record,
};

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use tdbms_kernel::Result;
use tdbms_storage::{DiskManager, FileId, Page, PageKind};

/// When the database takes a checkpoint (overlay write-through + log
/// truncation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointPolicy {
    /// After every commit: the log stays one transaction long and the
    /// overlay never outlives a statement. The default.
    EveryCommit,
    /// After every `n` commits: amortizes the write-through at the cost
    /// of a longer log and a bigger overlay.
    EveryN(u32),
    /// Only when explicitly requested.
    Manual,
}

impl CheckpointPolicy {
    /// Should a checkpoint follow the `commits_since_checkpoint`-th
    /// commit since the last one?
    pub fn due(&self, commits_since_checkpoint: u32) -> bool {
        match self {
            CheckpointPolicy::EveryCommit => true,
            CheckpointPolicy::EveryN(n) => {
                commits_since_checkpoint >= (*n).max(1)
            }
            CheckpointPolicy::Manual => false,
        }
    }
}

/// What recovery learned from the log at open.
pub struct RecoveryPlan {
    /// LSN space starts here (stamped pages may carry up to this - 1).
    pub base_lsn: u32,
    /// File lengths at the checkpoint that last truncated the log.
    pub snapshot: Vec<(FileId, u32)>,
    /// Committed transactions, in commit order, as `(lsn, record)` runs.
    pub txns: Vec<Vec<(u32, Record)>>,
    /// The last committed `(clock, catalog)` texts, if any transaction
    /// carried one — these supersede the files on disk.
    pub catalog: Option<(String, String)>,
    next_lsn: u32,
}

impl RecoveryPlan {
    /// Parse the raw log bytes. Never fails: a torn header yields an
    /// empty plan (see module docs for why that is sound) and a torn
    /// record ends the scan at the last intact commit.
    pub fn parse(bytes: &[u8]) -> RecoveryPlan {
        let (base_lsn, snapshot, off) = match parse_header(bytes) {
            Ok(Some(h)) => h,
            Ok(None) | Err(_) => (1, Vec::new(), bytes.len()),
        };
        let (records, max_lsn) = parse_records(&bytes[off..]);
        let mut txns = Vec::new();
        let mut catalog = None;
        let mut current: Vec<(u32, Record)> = Vec::new();
        for (lsn, rec) in records {
            if matches!(rec, Record::Begin) && !current.is_empty() {
                // An abandoned transaction: a statement died mid-append
                // (disk full) and was rolled back, then a later
                // statement committed. Its records have no `Commit` of
                // their own and must not be folded into the next
                // transaction's — a fresh `Begin` supersedes them.
                current.clear();
            }
            let is_commit = matches!(rec, Record::Commit);
            current.push((lsn, rec));
            if is_commit {
                for (_, r) in &current {
                    if let Record::Catalog {
                        clock,
                        catalog: text,
                    } = r
                    {
                        catalog = Some((clock.clone(), text.clone()));
                    }
                }
                txns.push(std::mem::take(&mut current));
            }
        }
        // `current` now holds an uncommitted tail: dropped by design.
        RecoveryPlan {
            base_lsn,
            snapshot,
            txns,
            catalog,
            next_lsn: base_lsn.max(max_lsn + 1),
        }
    }

    /// The first LSN the reopened log may assign.
    pub fn next_lsn(&self) -> u32 {
        self.next_lsn
    }

    /// True when there is nothing to redo.
    pub fn is_clean(&self) -> bool {
        self.snapshot.is_empty() && self.txns.is_empty()
    }

    /// The newest *committed* after-image of (`file`, `page_no`), if the
    /// log still holds one. This is the salvage source: a page that fails
    /// its checksum can be restored to exactly these bytes — point-in-time
    /// page repair out of the same records replay uses. Scans newest
    /// transaction first (later commits supersede earlier ones); a
    /// committed `DropFile` ends the search, since images older than the
    /// drop describe a file that no longer exists.
    pub fn latest_image(
        &self,
        file: FileId,
        page_no: u32,
    ) -> Option<&Page> {
        for txn in self.txns.iter().rev() {
            for (_, rec) in txn.iter().rev() {
                match rec {
                    Record::PageImage {
                        file: f,
                        page_no: p,
                        image,
                    } if *f == file && *p == page_no => {
                        return Some(image);
                    }
                    Record::DropFile { file: f } if *f == file => {
                        return None;
                    }
                    _ => {}
                }
            }
        }
        None
    }
}

/// Force `file` to exactly `len` pages. Shrinking preserves the first
/// `len` pages (the trait only truncates to zero, so they are read,
/// dropped, and re-appended); growing appends empty data pages — safe
/// placeholders, because every page appended under staging is installed
/// dirty and therefore always has a committed image to replay over it.
/// A missing file is skipped: a later committed `DropFile` removed it.
fn set_len(
    disk: &mut dyn DiskManager,
    file: FileId,
    len: u32,
) -> Result<()> {
    let Ok(cur) = disk.page_count(file) else {
        return Ok(());
    };
    if cur > len {
        let keep: Vec<Page> = (0..len)
            .map(|p| disk.read_page(file, p))
            .collect::<Result<_>>()?;
        disk.truncate(file)?;
        for p in &keep {
            disk.append_page(file, p)?;
        }
    } else {
        for _ in cur..len {
            disk.append_page(file, &Page::new(PageKind::Data))?;
        }
    }
    Ok(())
}

/// Redo a [`RecoveryPlan`] against the raw disk (run *before* any pager
/// buffers pages). Idempotent: see the module-level invariants.
pub fn replay(
    plan: &RecoveryPlan,
    disk: &mut dyn DiskManager,
) -> Result<()> {
    for &(file, len) in &plan.snapshot {
        set_len(disk, file, len)?;
    }
    for txn in &plan.txns {
        for (lsn, rec) in txn {
            match rec {
                Record::FileLen { file, len } => {
                    set_len(disk, *file, *len)?
                }
                Record::PageImage {
                    file,
                    page_no,
                    image,
                } => {
                    let Ok(n) = disk.page_count(*file) else {
                        continue;
                    };
                    if *page_no >= n {
                        set_len(disk, *file, page_no + 1)?;
                    }
                    let on_disk = disk.read_page(*file, *page_no)?;
                    if on_disk.lsn() < *lsn {
                        disk.write_page(*file, *page_no, image)?;
                    }
                }
                Record::DropFile { file } => {
                    if disk.page_count(*file).is_ok() {
                        disk.drop_file(*file)?;
                    }
                }
                Record::Begin | Record::Catalog { .. } | Record::Commit => {
                }
            }
        }
    }
    Ok(())
}

/// A cloneable handle on a [`Wal`]'s underlying [`LogStore`]. The
/// group-commit leader fsyncs through it *outside* the engine's commit
/// lock — that overlap (appenders keep committing while the leader
/// syncs) is what lets one fsync cover several commits.
#[derive(Clone)]
pub struct LogHandle {
    store: Arc<Mutex<Box<dyn LogStore>>>,
}

impl LogHandle {
    /// Force everything appended so far to stable storage.
    pub fn sync(&self) -> Result<()> {
        self.store
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .sync()
    }
}

/// The write-ahead log: LSN assignment, record appending, and
/// checkpoint truncation over a [`LogStore`]. The store sits behind a
/// mutex so a [`LogHandle`] can fsync it concurrently with appends.
pub struct Wal {
    store: Arc<Mutex<Box<dyn LogStore>>>,
    next_lsn: u32,
    bytes_appended: u64,
}

impl Wal {
    /// Open the log: read it back, derive the [`RecoveryPlan`], and
    /// position the LSN counter past everything ever logged. A brand-new
    /// log gets its initial header here, so records never precede one.
    pub fn open(
        mut store: Box<dyn LogStore>,
    ) -> Result<(Wal, RecoveryPlan)> {
        let bytes = store.read_all()?;
        let plan = RecoveryPlan::parse(&bytes);
        if bytes.is_empty() {
            store.reset(&encode_header(plan.next_lsn(), &[]))?;
        }
        let wal = Wal {
            store: Arc::new(Mutex::new(store)),
            next_lsn: plan.next_lsn(),
            bytes_appended: 0,
        };
        Ok((wal, plan))
    }

    fn store(&self) -> MutexGuard<'_, Box<dyn LogStore>> {
        self.store.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A cloneable fsync handle over this log's store (see
    /// [`LogHandle`]).
    pub fn handle(&self) -> LogHandle {
        LogHandle {
            store: self.store.clone(),
        }
    }

    /// The entire log contents, header included (diagnostics/tests).
    pub fn read_back(&self) -> Result<Vec<u8>> {
        self.store().read_all()
    }

    /// The LSN the next [`Wal::append`] will assign (the database stamps
    /// it into the page image before logging).
    pub fn peek_lsn(&self) -> u32 {
        self.next_lsn
    }

    /// Append one record; returns its LSN.
    pub fn append(&mut self, rec: &Record) -> Result<u32> {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        let bytes = rec.encode(lsn);
        self.store().append(&bytes)?;
        self.bytes_appended += bytes.len() as u64;
        Ok(lsn)
    }

    /// Force the log to stable storage (the commit point).
    pub fn sync(&mut self) -> Result<()> {
        self.store().sync()
    }

    /// Total bytes appended since open (the database converts deltas to
    /// page-equivalents for I/O accounting).
    pub fn bytes_appended(&self) -> u64 {
        self.bytes_appended
    }

    /// Checkpoint truncation: replace the log with a fresh header
    /// carrying the current LSN frontier and the given file-length
    /// snapshot, then sync. Call only after the data files and catalog
    /// the snapshot describes are durably on disk.
    pub fn truncate(&mut self, snapshot: &[(FileId, u32)]) -> Result<()> {
        self.truncate_with(snapshot, &[])
    }

    /// [`Wal::truncate`] with `records` (LSN-assigned here) composed
    /// into the same atomic reset. The database rides a committed
    /// catalog transaction along with every truncation, so the log never
    /// — not even between two operations of a checkpoint — lacks the
    /// catalog it would need to recover a directory-less database.
    pub fn truncate_with(
        &mut self,
        snapshot: &[(FileId, u32)],
        records: &[Record],
    ) -> Result<()> {
        let mut buf = encode_header(self.next_lsn, snapshot);
        for rec in records {
            let lsn = self.next_lsn;
            self.next_lsn += 1;
            buf.extend_from_slice(&rec.encode(lsn));
        }
        self.bytes_appended += buf.len() as u64;
        let mut store = self.store();
        store.reset(&buf)?;
        store.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdbms_storage::{MemDisk, PAGE_SIZE};

    fn image(byte: u8, lsn: u32) -> Page {
        let mut p = Page::new(PageKind::Data);
        p.push_row(4, &[byte; 4]).unwrap();
        p.set_lsn(lsn);
        p
    }

    /// Build a one-file disk with `n` pages of content `fill`.
    fn disk_with(n: u32, fill: u8) -> (MemDisk, FileId) {
        let mut d = MemDisk::new();
        let f = d.create_file().unwrap();
        for _ in 0..n {
            d.append_page(f, &image(fill, 0)).unwrap();
        }
        (d, f)
    }

    #[test]
    fn commit_boundary_separates_winners_from_losers() {
        let mut wal = Wal::open(Box::new(MemLog::new())).unwrap().0;
        wal.append(&Record::Begin).unwrap();
        wal.append(&Record::FileLen {
            file: FileId(0),
            len: 1,
        })
        .unwrap();
        wal.append(&Record::Commit).unwrap();
        wal.append(&Record::Begin).unwrap();
        let lsn = wal
            .append(&Record::FileLen {
                file: FileId(0),
                len: 9,
            })
            .unwrap();
        // No commit: the second transaction must vanish.
        let bytes = wal.read_back().unwrap();
        let plan = RecoveryPlan::parse(&bytes);
        assert_eq!(plan.txns.len(), 1);
        assert_eq!(plan.txns[0].len(), 3);
        assert!(plan.next_lsn() > lsn, "lsn frontier covers losers too");
    }

    #[test]
    fn replay_trims_uncommitted_tail_and_applies_images() {
        // Committed state: 2 pages, page 1 re-imaged at lsn 3. The disk
        // additionally has an uncommitted appended tail (pages 2, 3).
        let (mut disk, f) = disk_with(4, 1);
        let mut wal = Wal::open(Box::new(MemLog::new())).unwrap().0;
        wal.append(&Record::Begin).unwrap();
        wal.append(&Record::FileLen { file: f, len: 2 }).unwrap();
        let lsn = wal.peek_lsn();
        wal.append(&Record::PageImage {
            file: f,
            page_no: 1,
            image: image(7, lsn),
        })
        .unwrap();
        wal.append(&Record::Commit).unwrap();
        let plan = RecoveryPlan::parse(&wal.read_back().unwrap());
        replay(&plan, &mut disk).unwrap();
        assert_eq!(disk.page_count(f).unwrap(), 2, "tail trimmed");
        assert_eq!(
            disk.read_page(f, 1).unwrap().row(4, 0).unwrap(),
            &[7; 4]
        );
        assert_eq!(
            disk.read_page(f, 0).unwrap().row(4, 0).unwrap(),
            &[1; 4]
        );
        // Idempotence: replaying again changes nothing.
        let before: Vec<Vec<u8>> = (0..2)
            .map(|p| disk.read_page(f, p).unwrap().as_bytes().to_vec())
            .collect();
        replay(&plan, &mut disk).unwrap();
        let after: Vec<Vec<u8>> = (0..2)
            .map(|p| disk.read_page(f, p).unwrap().as_bytes().to_vec())
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn replay_skips_pages_the_disk_already_has() {
        let (mut disk, f) = disk_with(1, 1);
        // Disk page already stamped with lsn 10 (a checkpoint wrote it).
        disk.write_page(f, 0, &image(9, 10)).unwrap();
        let plan = RecoveryPlan {
            base_lsn: 1,
            snapshot: vec![],
            txns: vec![vec![(
                5,
                Record::PageImage {
                    file: f,
                    page_no: 0,
                    image: image(2, 5),
                },
            )]],
            catalog: None,
            next_lsn: 11,
        };
        replay(&plan, &mut disk).unwrap();
        assert_eq!(
            disk.read_page(f, 0).unwrap().row(4, 0).unwrap(),
            &[9; 4],
            "older image must not clobber a newer page"
        );
    }

    #[test]
    fn replay_extends_with_placeholders_then_images() {
        let (mut disk, f) = disk_with(0, 0);
        let lsn = 4;
        let plan = RecoveryPlan {
            base_lsn: 1,
            snapshot: vec![],
            txns: vec![vec![
                (2, Record::FileLen { file: f, len: 3 }),
                (
                    lsn,
                    Record::PageImage {
                        file: f,
                        page_no: 2,
                        image: image(5, lsn),
                    },
                ),
            ]],
            catalog: None,
            next_lsn: 9,
        };
        replay(&plan, &mut disk).unwrap();
        assert_eq!(disk.page_count(f).unwrap(), 3);
        assert_eq!(
            disk.read_page(f, 2).unwrap().row(4, 0).unwrap(),
            &[5; 4]
        );
        // Placeholder pages parse as empty data pages, not page-0 chains.
        let ph = disk.read_page(f, 1).unwrap();
        assert_eq!(ph.count(), 0);
        assert_eq!(ph.overflow(), tdbms_storage::NO_PAGE);
    }

    #[test]
    fn replay_handles_drops_of_present_and_absent_files() {
        let (mut disk, f) = disk_with(2, 3);
        let plan = RecoveryPlan {
            base_lsn: 1,
            snapshot: vec![],
            txns: vec![vec![
                (1, Record::DropFile { file: f }),
                (2, Record::DropFile { file: FileId(909) }),
                // Records for the dropped file are skipped, not errors.
                (3, Record::FileLen { file: f, len: 5 }),
                (
                    4,
                    Record::PageImage {
                        file: f,
                        page_no: 0,
                        image: image(1, 4),
                    },
                ),
            ]],
            catalog: None,
            next_lsn: 5,
        };
        replay(&plan, &mut disk).unwrap();
        assert!(disk.page_count(f).is_err());
    }

    #[test]
    fn truncation_preserves_the_lsn_frontier_and_snapshot() {
        let mut wal = Wal::open(Box::new(MemLog::new())).unwrap().0;
        wal.append(&Record::Begin).unwrap();
        wal.append(&Record::Commit).unwrap();
        let frontier = wal.peek_lsn();
        wal.truncate(&[(FileId(0), 7)]).unwrap();
        let bytes = wal.read_back().unwrap();
        let plan = RecoveryPlan::parse(&bytes);
        assert!(plan.txns.is_empty());
        assert_eq!(plan.base_lsn, frontier);
        assert_eq!(plan.snapshot, vec![(FileId(0), 7)]);
        assert_eq!(plan.next_lsn(), frontier);
        // Snapshot replay restores the checkpointed length.
        let (mut disk, f) = disk_with(9, 1);
        assert_eq!(f, FileId(0));
        replay(&plan, &mut disk).unwrap();
        assert_eq!(disk.page_count(f).unwrap(), 7);
    }

    #[test]
    fn latest_image_prefers_newer_commits_and_respects_drops() {
        let f = FileId(0);
        let g = FileId(1);
        let plan = RecoveryPlan {
            base_lsn: 1,
            snapshot: vec![],
            txns: vec![
                vec![
                    (
                        1,
                        Record::PageImage {
                            file: f,
                            page_no: 0,
                            image: image(1, 1),
                        },
                    ),
                    (
                        2,
                        Record::PageImage {
                            file: g,
                            page_no: 0,
                            image: image(8, 2),
                        },
                    ),
                    (3, Record::Commit),
                ],
                vec![
                    (
                        4,
                        Record::PageImage {
                            file: f,
                            page_no: 0,
                            image: image(2, 4),
                        },
                    ),
                    (5, Record::DropFile { file: g }),
                    (6, Record::Commit),
                ],
            ],
            catalog: None,
            next_lsn: 7,
        };
        let img = plan.latest_image(f, 0).unwrap();
        assert_eq!(img.row(4, 0).unwrap(), &[2; 4], "newest commit wins");
        assert!(plan.latest_image(f, 1).is_none(), "never imaged");
        assert!(
            plan.latest_image(g, 0).is_none(),
            "images older than a committed drop are not salvage material"
        );
    }

    #[test]
    fn abandoned_begin_is_not_folded_into_the_next_commit() {
        // A statement died mid-append (disk full) and was rolled back:
        // its `Begin` + images sit in the log with no `Commit`. The
        // next statement then committed. Replay must apply only the
        // committed transaction — folding the abandoned records in
        // would resurrect the rolled-back statement's pages.
        let mut wal = Wal::open(Box::new(MemLog::new())).unwrap().0;
        let f = FileId(0);
        wal.append(&Record::Begin).unwrap();
        wal.append(&Record::PageImage {
            file: f,
            page_no: 1,
            image: image(9, 2),
        })
        .unwrap();
        // No Commit: the statement was rolled back. A fresh statement
        // begins and commits.
        wal.append(&Record::Begin).unwrap();
        wal.append(&Record::PageImage {
            file: f,
            page_no: 0,
            image: image(3, 4),
        })
        .unwrap();
        wal.append(&Record::Commit).unwrap();
        let bytes = wal.read_back().unwrap();
        let plan = RecoveryPlan::parse(&bytes);
        assert_eq!(plan.txns.len(), 1);
        assert!(
            plan.latest_image(f, 1).is_none(),
            "the abandoned statement's image is not salvage material"
        );
        let (mut disk, file) = disk_with(2, 7);
        assert_eq!(file, f);
        replay(&plan, &mut disk).unwrap();
        let committed = disk.read_page(f, 0).unwrap();
        assert_eq!(committed.row(4, 0).unwrap(), &[3; 4]);
        let untouched = disk.read_page(f, 1).unwrap();
        assert_eq!(
            untouched.row(4, 0).unwrap(),
            &[7; 4],
            "the rolled-back statement's page keeps its old bytes"
        );
    }

    #[test]
    fn checkpoint_policies() {
        assert!(CheckpointPolicy::EveryCommit.due(1));
        assert!(!CheckpointPolicy::EveryN(3).due(2));
        assert!(CheckpointPolicy::EveryN(3).due(3));
        assert!(!CheckpointPolicy::Manual.due(1_000_000));
    }

    #[test]
    fn bytes_appended_tracks_page_scale() {
        let mut wal = Wal::open(Box::new(MemLog::new())).unwrap().0;
        wal.append(&Record::PageImage {
            file: FileId(0),
            page_no: 0,
            image: image(1, 1),
        })
        .unwrap();
        let b = wal.bytes_appended();
        assert!(b as usize > PAGE_SIZE && (b as usize) < PAGE_SIZE + 64);
    }
}
