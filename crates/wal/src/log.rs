//! Log storage backends.
//!
//! [`LogStore`] is the byte-level contract the WAL writes against:
//! append, fsync, read back, and reset (checkpoint truncation). The
//! backends mirror the disk managers: [`FileLog`] for a real durable log
//! beside the page files, [`MemLog`] for unit tests, [`SharedMemLog`] so
//! a crash test can reopen the surviving bytes in the next incarnation,
//! and [`FaultLog`] to crash the log channel on the same
//! [`FaultPlan`] budget as the data disk.

use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};
use tdbms_kernel::Result;
use tdbms_storage::FaultPlan;

/// Byte-level log storage. `Send + Sync` is part of the contract so a
/// WAL'd engine (which drives the log from behind its commit lock) can be
/// shared across threads.
pub trait LogStore: Send + Sync {
    /// The entire log contents, header included.
    fn read_all(&mut self) -> Result<Vec<u8>>;
    /// Append bytes at the end.
    fn append(&mut self, bytes: &[u8]) -> Result<()>;
    /// Force appended bytes to stable storage.
    fn sync(&mut self) -> Result<()>;
    /// Replace the whole log with `bytes` (checkpoint truncation).
    /// Contract: **atomic** — after a crash the log holds either the old
    /// contents or the new, never a mixture (file backends implement
    /// this as write-to-temp + fsync + rename). The WAL relies on this:
    /// the truncated log carries the only copy of the catalog when the
    /// database has no directory to checkpoint it into.
    fn reset(&mut self, bytes: &[u8]) -> Result<()>;
}

/// In-memory log.
#[derive(Default)]
pub struct MemLog {
    bytes: Vec<u8>,
}

impl MemLog {
    /// An empty in-memory log.
    pub fn new() -> Self {
        Self::default()
    }
}

impl LogStore for MemLog {
    fn read_all(&mut self) -> Result<Vec<u8>> {
        Ok(self.bytes.clone())
    }

    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        self.bytes.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }

    fn reset(&mut self, bytes: &[u8]) -> Result<()> {
        self.bytes.clear();
        self.bytes.extend_from_slice(bytes);
        Ok(())
    }
}

/// A cloneable handle over one shared in-memory log: the surviving bytes
/// of a crashed incarnation, reopenable by the next.
#[derive(Clone, Default)]
pub struct SharedMemLog {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl SharedMemLog {
    /// An empty shared log.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<u8>> {
        self.bytes.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl LogStore for SharedMemLog {
    fn read_all(&mut self) -> Result<Vec<u8>> {
        Ok(self.lock().clone())
    }

    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        self.lock().extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }

    fn reset(&mut self, bytes: &[u8]) -> Result<()> {
        let mut b = self.lock();
        b.clear();
        b.extend_from_slice(bytes);
        Ok(())
    }
}

/// File-backed log (`wal.tdbms` in the database directory).
pub struct FileLog {
    fh: std::fs::File,
    path: PathBuf,
}

impl FileLog {
    /// Open (creating if needed) the log file at `path`.
    ///
    /// A crash between `reset`'s temp-file write and its rename leaves a
    /// stale `*.tmp` sibling beside an intact old log (the rename never
    /// happened, so the old contents are still the truth). Reopening
    /// clears the leftover so it can never shadow or be mistaken for the
    /// real log, and so a later `reset` starts from a clean slate.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self> {
        let path = path.into();
        let tmp = path.with_extension("tmp");
        match std::fs::remove_file(&tmp) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        let fh = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        Ok(FileLog { fh, path })
    }
}

impl LogStore for FileLog {
    fn read_all(&mut self) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.fh.seek(SeekFrom::Start(0))?;
        self.fh.read_to_end(&mut out)?;
        Ok(out)
    }

    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        self.fh.seek(SeekFrom::End(0))?;
        self.fh.write_all(bytes)?;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.fh.sync_all()?;
        Ok(())
    }

    fn reset(&mut self, bytes: &[u8]) -> Result<()> {
        // Atomic (per the trait contract): build the replacement beside
        // the log, fsync it, and rename it into place.
        let tmp = self.path.with_extension("tmp");
        let mut fh = std::fs::File::create(&tmp)?;
        fh.write_all(bytes)?;
        fh.sync_all()?;
        std::fs::rename(&tmp, &self.path)?;
        // The temp handle is write-only; reopen for reading too.
        self.fh = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)?;
        Ok(())
    }
}

/// A [`LogStore`] that crashes on the shared [`FaultPlan`] budget.
/// Appends and resets are mutating ops. A crashing *append* persists
/// only a prefix (`torn_bytes`, default none) — simulating a torn log
/// append, which recovery must treat as "this record never happened". A
/// crashing *reset* leaves the old contents untouched: resets are atomic
/// by the trait contract (rename-based), so they either happen whole or
/// not at all.
pub struct FaultLog {
    inner: Box<dyn LogStore>,
    plan: FaultPlan,
    torn_bytes: Option<usize>,
    /// Bit-flip injection: the crashing append persists the record *in
    /// full* but with this bit (index into the record's bits, wrapped)
    /// flipped — bit rot at the log tail rather than a torn tail. The
    /// FNV frame check must catch it and truncate recovery at the last
    /// valid record.
    flip_bit: Option<u64>,
}

impl FaultLog {
    /// Wrap `inner` under `plan`, dropping the crashing append whole.
    pub fn new(inner: Box<dyn LogStore>, plan: FaultPlan) -> Self {
        FaultLog {
            inner,
            plan,
            torn_bytes: None,
            flip_bit: None,
        }
    }

    /// Wrap `inner` under `plan`; the crashing append persists its first
    /// `bytes` bytes.
    pub fn with_torn_appends(
        inner: Box<dyn LogStore>,
        plan: FaultPlan,
        bytes: usize,
    ) -> Self {
        FaultLog {
            inner,
            plan,
            torn_bytes: Some(bytes),
            flip_bit: None,
        }
    }

    /// Wrap `inner` under `plan`; the crashing append persists all its
    /// bytes with the `bit`-th bit (mod the record's bit length) flipped.
    pub fn with_bit_flips(
        inner: Box<dyn LogStore>,
        plan: FaultPlan,
        bit: u64,
    ) -> Self {
        FaultLog {
            inner,
            plan,
            torn_bytes: None,
            flip_bit: Some(bit),
        }
    }
}

impl LogStore for FaultLog {
    fn read_all(&mut self) -> Result<Vec<u8>> {
        self.plan.check_alive()?;
        self.inner.read_all()
    }

    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        let was_alive = !self.plan.crashed();
        if let Err(e) = self.plan.charge() {
            // Tearing/bit rot model a *crash* mid-append. A transient
            // failure (ENOSPC window) drops the append whole and the
            // plan stays alive.
            if was_alive && self.plan.crashed() {
                if let Some(bit) = self.flip_bit {
                    if !bytes.is_empty() {
                        let mut rotted = bytes.to_vec();
                        let at = (bit % (rotted.len() as u64 * 8)) as usize;
                        rotted[at / 8] ^= 1 << (at % 8);
                        let _ = self.inner.append(&rotted);
                    }
                } else if let Some(k) = self.torn_bytes {
                    let _ = self.inner.append(&bytes[..k.min(bytes.len())]);
                }
            }
            return Err(e);
        }
        self.inner.append(bytes)
    }

    fn sync(&mut self) -> Result<()> {
        self.plan.charge_sync()?;
        self.inner.sync()
    }

    fn reset(&mut self, bytes: &[u8]) -> Result<()> {
        self.plan.charge()?;
        self.inner.reset(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(log: &mut dyn LogStore) {
        assert!(log.read_all().unwrap().is_empty());
        log.append(b"abc").unwrap();
        log.append(b"def").unwrap();
        log.sync().unwrap();
        assert_eq!(log.read_all().unwrap(), b"abcdef");
        log.reset(b"xy").unwrap();
        assert_eq!(log.read_all().unwrap(), b"xy");
        log.append(b"z").unwrap();
        assert_eq!(log.read_all().unwrap(), b"xyz");
    }

    #[test]
    fn mem_log_contract() {
        exercise(&mut MemLog::new());
    }

    #[test]
    fn shared_mem_log_contract_and_sharing() {
        let mut log = SharedMemLog::new();
        exercise(&mut log);
        let mut other = log.clone();
        other.append(b"!").unwrap();
        assert_eq!(log.read_all().unwrap(), b"xyz!");
    }

    #[test]
    fn file_log_contract_and_reopen() {
        let dir = tdbms_kernel::tmpdir::fresh_dir("wal-log");
        let path = dir.join("wal.tdbms");
        exercise(&mut FileLog::open(&path).unwrap());
        // Reopen: contents survive.
        let mut log = FileLog::open(&path).unwrap();
        assert_eq!(log.read_all().unwrap(), b"xyz");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_log_reopen_clears_a_stale_reset_tmp() {
        // Crash point: reset wrote (and maybe fsynced) wal.tmp but died
        // before the rename. The old log is intact and the tmp is
        // garbage; reopening must keep the former and clear the latter.
        let dir = tdbms_kernel::tmpdir::fresh_dir("wal-stale-tmp");
        let path = dir.join("wal.tdbms");
        {
            let mut log = FileLog::open(&path).unwrap();
            log.append(b"committed").unwrap();
            log.sync().unwrap();
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, b"half-a-checkpoint").unwrap();
        let mut log = FileLog::open(&path).unwrap();
        assert_eq!(log.read_all().unwrap(), b"committed");
        assert!(!tmp.exists(), "stale tmp must be cleared on reopen");
        // And a subsequent reset still works end to end.
        log.reset(b"fresh").unwrap();
        assert_eq!(log.read_all().unwrap(), b"fresh");
        assert!(!tmp.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fault_log_flips_one_bit_of_the_crashing_append() {
        let shared = SharedMemLog::new();
        let plan = FaultPlan::new(Some(2));
        let mut log = FaultLog::with_bit_flips(
            Box::new(shared.clone()),
            plan.clone(),
            9, // bit 9 = byte 1, bit 1
        );
        log.append(b"abcd").unwrap();
        assert!(log.append(b"efgh").is_err(), "second append crashes");
        assert!(plan.crashed());
        let mut survivor = shared;
        let got = survivor.read_all().unwrap();
        assert_eq!(got.len(), 8, "full length persisted, unlike a tear");
        assert_eq!(&got[..4], b"abcd");
        assert_eq!(got[4], b'e');
        assert_eq!(got[5], b'f' ^ 0b10, "exactly one bit rotted");
        assert_eq!(&got[6..], b"gh");
    }

    #[test]
    fn fault_log_tears_the_crashing_append() {
        let shared = SharedMemLog::new();
        let plan = FaultPlan::new(Some(2));
        let mut log = FaultLog::with_torn_appends(
            Box::new(shared.clone()),
            plan.clone(),
            2,
        );
        log.append(b"abcd").unwrap();
        assert!(log.append(b"efgh").is_err(), "second append crashes");
        assert!(plan.crashed());
        assert!(log.append(b"ijkl").is_err(), "dead after the crash");
        assert!(log.read_all().is_err());
        let mut survivor = shared;
        assert_eq!(
            survivor.read_all().unwrap(),
            b"abcdef",
            "2-byte torn tail of the crashing append"
        );
    }
}
