//! Log record encoding: framing, checksums, and the log header.
//!
//! The log is a header followed by a flat sequence of framed records:
//!
//! ```text
//! record  := [len u32] [lsn u32] [kind u8] [payload] [fnv64 u64]
//! ```
//!
//! `len` counts the `lsn + kind + payload` bytes; the FNV-1a 64 checksum
//! covers the same span. A torn append leaves a record whose length field
//! overruns the file or whose checksum mismatches — either way the reader
//! stops there, and everything before it is intact (the log is
//! append-only between truncations). The header carries the base LSN
//! (keeping LSNs monotonic across log truncations, since data pages keep
//! their stamps) and a snapshot of every file's committed length at the
//! checkpoint that wrote it.

use tdbms_kernel::{Error, Result};
use tdbms_storage::{FileId, Page, PAGE_SIZE};

/// Header magic (8 bytes) + format version.
const MAGIC: &[u8; 8] = b"TDBMSWAL";
const VERSION: u32 = 1;

/// FNV-1a 64-bit: tiny, dependency-free, and plenty for torn-write
/// detection (this is an integrity check, not an adversarial one). The
/// implementation lives in `tdbms-storage` so the page-checksum sidecar
/// and the log framing are guaranteed to use the same polynomial.
pub use tdbms_storage::fnv64;

/// One log record. The WAL assigns each appended record its own LSN.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A transaction's first record.
    Begin,
    /// `file` has `len` pages in the committed state (appends and
    /// truncations change lengths eagerly on disk; recovery restores the
    /// committed length, trimming uncommitted tails).
    FileLen { file: FileId, len: u32 },
    /// The committed after-image of one page. The image carries this
    /// record's LSN in its header, so replay can skip pages the disk
    /// already has.
    PageImage {
        file: FileId,
        page_no: u32,
        image: Page,
    },
    /// `file` was dropped; the physical drop is deferred until after the
    /// commit is durable, and replay re-executes it if needed.
    DropFile { file: FileId },
    /// The committed catalog and clock, verbatim in their on-disk text
    /// formats. The last committed one wins at recovery and takes
    /// precedence over `catalog.tdbms` (which may predate the commit).
    Catalog { clock: String, catalog: String },
    /// The transaction is durable once this record is on stable storage.
    Commit,
}

impl Record {
    fn kind(&self) -> u8 {
        match self {
            Record::Begin => 1,
            Record::FileLen { .. } => 2,
            Record::PageImage { .. } => 3,
            Record::DropFile { .. } => 4,
            Record::Catalog { .. } => 5,
            Record::Commit => 6,
        }
    }

    /// Frame this record (with `lsn`) for appending to the log.
    pub fn encode(&self, lsn: u32) -> Vec<u8> {
        let mut body = Vec::with_capacity(16);
        body.extend_from_slice(&lsn.to_le_bytes());
        body.push(self.kind());
        match self {
            Record::Begin | Record::Commit => {}
            Record::FileLen { file, len } => {
                body.extend_from_slice(&file.0.to_le_bytes());
                body.extend_from_slice(&len.to_le_bytes());
            }
            Record::PageImage {
                file,
                page_no,
                image,
            } => {
                body.extend_from_slice(&file.0.to_le_bytes());
                body.extend_from_slice(&page_no.to_le_bytes());
                body.extend_from_slice(image.as_bytes());
            }
            Record::DropFile { file } => {
                body.extend_from_slice(&file.0.to_le_bytes());
            }
            Record::Catalog { clock, catalog } => {
                let cb = clock.as_bytes();
                body.extend_from_slice(&(cb.len() as u32).to_le_bytes());
                body.extend_from_slice(cb);
                body.extend_from_slice(catalog.as_bytes());
            }
        }
        let mut out = Vec::with_capacity(body.len() + 12);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&fnv64(&body).to_le_bytes());
        out
    }

    fn decode_body(body: &[u8]) -> Result<(u32, Record)> {
        let bad = || Error::Corruption {
            file: None,
            page: None,
            detail: "malformed wal record".into(),
        };
        if body.len() < 5 {
            return Err(bad());
        }
        let lsn = u32::from_le_bytes(body[0..4].try_into().unwrap());
        let kind = body[4];
        let payload = &body[5..];
        let u32_at = |off: usize| -> Result<u32> {
            payload
                .get(off..off + 4)
                .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
                .ok_or_else(bad)
        };
        let rec = match kind {
            1 if payload.is_empty() => Record::Begin,
            2 if payload.len() == 8 => Record::FileLen {
                file: FileId(u32_at(0)?),
                len: u32_at(4)?,
            },
            3 if payload.len() == 8 + PAGE_SIZE => {
                let mut bytes = Box::new([0u8; PAGE_SIZE]);
                bytes.copy_from_slice(&payload[8..]);
                Record::PageImage {
                    file: FileId(u32_at(0)?),
                    page_no: u32_at(4)?,
                    image: Page::from_bytes(bytes),
                }
            }
            4 if payload.len() == 4 => Record::DropFile {
                file: FileId(u32_at(0)?),
            },
            5 => {
                let clock_len = u32_at(0)? as usize;
                let rest = payload.get(4..).ok_or_else(bad)?;
                if clock_len > rest.len() {
                    return Err(bad());
                }
                let clock = std::str::from_utf8(&rest[..clock_len])
                    .map_err(|_| bad())?
                    .to_string();
                let catalog = std::str::from_utf8(&rest[clock_len..])
                    .map_err(|_| bad())?
                    .to_string();
                Record::Catalog { clock, catalog }
            }
            6 if payload.is_empty() => Record::Commit,
            _ => return Err(bad()),
        };
        Ok((lsn, rec))
    }
}

/// Parse the framed records in `buf`, stopping silently at the first
/// truncated or corrupt frame (the torn tail of a crashed append).
/// Returns the records with their LSNs and the highest LSN seen.
pub fn parse_records(buf: &[u8]) -> (Vec<(u32, Record)>, u32) {
    let mut out = Vec::new();
    let mut max_lsn = 0;
    let mut at = 0;
    while let Some(lenb) = buf.get(at..at + 4) {
        let len = u32::from_le_bytes(lenb.try_into().unwrap()) as usize;
        let Some(body) = buf.get(at + 4..at + 4 + len) else {
            break;
        };
        let Some(sumb) = buf.get(at + 4 + len..at + 12 + len) else {
            break;
        };
        if u64::from_le_bytes(sumb.try_into().unwrap()) != fnv64(body) {
            break;
        }
        let Ok((lsn, rec)) = Record::decode_body(body) else {
            break;
        };
        max_lsn = max_lsn.max(lsn);
        out.push((lsn, rec));
        at += 12 + len;
    }
    (out, max_lsn)
}

/// Serialize a log header: base LSN plus the checkpoint's file-length
/// snapshot, checksummed as one unit.
pub fn encode_header(base_lsn: u32, snapshot: &[(FileId, u32)]) -> Vec<u8> {
    let mut body = Vec::with_capacity(20 + snapshot.len() * 8);
    body.extend_from_slice(MAGIC);
    body.extend_from_slice(&VERSION.to_le_bytes());
    body.extend_from_slice(&base_lsn.to_le_bytes());
    body.extend_from_slice(&(snapshot.len() as u32).to_le_bytes());
    for (file, len) in snapshot {
        body.extend_from_slice(&file.0.to_le_bytes());
        body.extend_from_slice(&len.to_le_bytes());
    }
    let sum = fnv64(&body);
    body.extend_from_slice(&sum.to_le_bytes());
    body
}

/// Parse a log header. `Ok(None)` for an empty buffer (fresh log);
/// `Err` when the header is torn or foreign — the caller treats that the
/// same as empty, because a header is only ever written by a checkpoint
/// *after* the data files it describes were materialized and synced.
/// Returns `(base_lsn, snapshot, records_offset)`.
#[allow(clippy::type_complexity)]
pub fn parse_header(
    buf: &[u8],
) -> Result<Option<(u32, Vec<(FileId, u32)>, usize)>> {
    if buf.is_empty() {
        return Ok(None);
    }
    let bad = || Error::Io("malformed wal header".into());
    if buf.len() < 20 || &buf[..8] != MAGIC {
        return Err(bad());
    }
    if u32::from_le_bytes(buf[8..12].try_into().unwrap()) != VERSION {
        return Err(bad());
    }
    let base_lsn = u32::from_le_bytes(buf[12..16].try_into().unwrap());
    let n = u32::from_le_bytes(buf[16..20].try_into().unwrap()) as usize;
    let end = 20 + n * 8;
    let table = buf.get(20..end).ok_or_else(bad)?;
    let sumb = buf.get(end..end + 8).ok_or_else(bad)?;
    if u64::from_le_bytes(sumb.try_into().unwrap()) != fnv64(&buf[..end]) {
        return Err(bad());
    }
    let snapshot = table
        .chunks_exact(8)
        .map(|c| {
            (
                FileId(u32::from_le_bytes(c[0..4].try_into().unwrap())),
                u32::from_le_bytes(c[4..8].try_into().unwrap()),
            )
        })
        .collect();
    Ok(Some((base_lsn, snapshot, end + 8)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdbms_storage::PageKind;

    fn sample_records() -> Vec<Record> {
        let mut img = Page::new(PageKind::Overflow);
        img.push_row(4, &[9; 4]).unwrap();
        img.set_lsn(3);
        vec![
            Record::Begin,
            Record::FileLen {
                file: FileId(2),
                len: 17,
            },
            Record::PageImage {
                file: FileId(2),
                page_no: 5,
                image: img,
            },
            Record::DropFile { file: FileId(9) },
            Record::Catalog {
                clock: "clock 42".into(),
                catalog: "tdbms-catalog 1\nend\n".into(),
            },
            Record::Commit,
        ]
    }

    #[test]
    fn records_roundtrip() {
        let mut buf = Vec::new();
        for (i, rec) in sample_records().iter().enumerate() {
            buf.extend_from_slice(&rec.encode(i as u32 + 1));
        }
        let (got, max_lsn) = parse_records(&buf);
        assert_eq!(max_lsn, 6);
        assert_eq!(got.len(), 6);
        for (i, (lsn, rec)) in got.iter().enumerate() {
            assert_eq!(*lsn, i as u32 + 1);
            assert_eq!(rec, &sample_records()[i]);
        }
    }

    #[test]
    fn torn_tail_stops_the_parse_cleanly() {
        let mut buf = Vec::new();
        for (i, rec) in sample_records().iter().enumerate() {
            buf.extend_from_slice(&rec.encode(i as u32 + 1));
        }
        let whole = parse_records(&buf).0.len();
        // A torn append: any strict prefix of the last record parses to
        // one fewer record, never to garbage.
        let last = Record::Commit.encode(7);
        for cut in 0..last.len() {
            let mut torn = buf.clone();
            torn.extend_from_slice(&last[..cut]);
            assert_eq!(parse_records(&torn).0.len(), whole, "cut {cut}");
        }
        // Flipped byte inside a record body: checksum stops the parse at
        // that record.
        let mut flipped = buf.clone();
        flipped[6] ^= 0xff; // inside the first record's body
        assert_eq!(parse_records(&flipped).0.len(), 0);
    }

    #[test]
    fn header_roundtrips_and_rejects_tears() {
        let snap = vec![(FileId(0), 4), (FileId(3), 0)];
        let hdr = encode_header(77, &snap);
        let (base, got, off) = parse_header(&hdr).unwrap().unwrap();
        assert_eq!(base, 77);
        assert_eq!(got, snap);
        assert_eq!(off, hdr.len());
        assert!(parse_header(&[]).unwrap().is_none(), "fresh log");
        for cut in 1..hdr.len() {
            assert!(parse_header(&hdr[..cut]).is_err(), "cut {cut}");
        }
        let mut bad = hdr.clone();
        bad[13] ^= 1;
        assert!(parse_header(&bad).is_err());
    }

    #[test]
    fn header_then_records_compose() {
        let mut buf = encode_header(10, &[(FileId(0), 1)]);
        buf.extend_from_slice(&Record::Begin.encode(10));
        buf.extend_from_slice(&Record::Commit.encode(11));
        let (base, _, off) = parse_header(&buf).unwrap().unwrap();
        assert_eq!(base, 10);
        let (recs, max) = parse_records(&buf[off..]);
        assert_eq!(recs.len(), 2);
        assert_eq!(max, 11);
    }
}
