//! Group commit: coalesce many sessions' committed WAL appends into one
//! fsync.
//!
//! ## Protocol
//!
//! Writers append their transaction's records (ending in `Commit`) under
//! the engine's exclusive commit lock, then [`GroupCommit::register`] a
//! *ticket* — a monotone sequence number whose order matches log order,
//! because both the appends and the registration happen inside the same
//! critical section. The writer then **releases the commit lock** and
//! calls [`GroupCommit::wait_durable`]: the first waiter whose ticket is
//! not yet durable elects itself *leader*, lingers up to `max_delay` (or
//! until `max_batch` commits have accumulated) so later commits can join
//! the batch, issues one fsync, and advances the durable watermark to
//! the last ticket that was appended before the fsync began. Everyone at
//! or below the watermark is acknowledged; the rest elect the next
//! leader.
//!
//! Because the fsync happens *outside* the commit lock, other writers
//! keep appending while the leader syncs — that overlap is where the
//! commits-per-fsync ratio above 1 comes from.
//!
//! ## Failure semantics
//!
//! * An acknowledgement (an `Ok` return from `wait_durable`) is issued
//!   strictly after an fsync that covered the ticket — never before, so
//!   there are no phantom acks: a crash between the fsync and the ack
//!   can lose the *ack* but not the *commit*.
//! * A failed batch fsync poisons the queue: the affected tickets and
//!   every later one fail with the same error (the log's durable prefix
//!   is unknown past the watermark), while tickets already at or below
//!   the watermark still report success — their durability was
//!   established by an earlier fsync.
//! * A checkpoint (which materializes the overlay, fsyncs the data
//!   files, and atomically truncates the log) makes everything appended
//!   durable by other means; [`GroupCommit::mark_all_durable`] retires
//!   every outstanding ticket in that case.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};
use tdbms_kernel::{Error, Result};

/// Batching knobs for [`GroupCommit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommitConfig {
    /// Fsync as soon as this many commits are waiting (minimum 1).
    pub max_batch: u32,
    /// ... or once the leader has lingered this long, whichever comes
    /// first. Zero means "fsync immediately with whatever has arrived".
    pub max_delay: Duration,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        GroupCommitConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(2),
        }
    }
}

#[derive(Default)]
struct GcState {
    /// Tickets issued; ticket `n` covers the `n`-th registered commit.
    /// Registration order matches log order (both happen under the
    /// engine's commit lock), so "durable through ticket t" is exactly
    /// "the log's committed prefix includes commit t".
    appended: u64,
    /// Highest ticket covered by a successful fsync (or checkpoint).
    durable: u64,
    /// A leader is currently gathering a batch or fsyncing.
    leader: bool,
    /// A batch fsync failed: the durable prefix past `durable` is
    /// unknown, so every ticket above it fails with this error.
    failed: Option<Error>,
}

/// The group-commit queue: tickets, leader election, and the durable
/// watermark. One per durable engine; shared by every session.
pub struct GroupCommit {
    cfg: GroupCommitConfig,
    state: Mutex<GcState>,
    cv: Condvar,
    commits: AtomicU64,
    fsyncs: AtomicU64,
}

impl GroupCommit {
    /// A fresh queue with the given batching knobs.
    pub fn new(cfg: GroupCommitConfig) -> Self {
        GroupCommit {
            cfg,
            state: Mutex::new(GcState::default()),
            cv: Condvar::new(),
            commits: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> GroupCommitConfig {
        self.cfg
    }

    /// Commits registered so far.
    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Fsyncs (batch syncs plus ticket-retiring checkpoints) so far.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    fn lock(&self) -> MutexGuard<'_, GcState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Issue the ticket for a commit whose records (ending in `Commit`)
    /// are fully appended to the log. Must be called inside the same
    /// critical section as the appends so ticket order matches log
    /// order.
    pub fn register(&self) -> u64 {
        let mut st = self.lock();
        st.appended += 1;
        self.commits.fetch_add(1, Ordering::Relaxed);
        let ticket = st.appended;
        // Wake a gathering leader: its batch may now be full.
        self.cv.notify_all();
        ticket
    }

    /// Retire every outstanding ticket without an fsync of the log —
    /// called after a checkpoint has durably materialized everything the
    /// log described (data files fsynced, log atomically truncated).
    ///
    /// This also clears a prior batch-fsync failure: the failure made
    /// the durable prefix past the watermark *unknown*, and a
    /// completed checkpoint re-establishes it (everything, by other
    /// means). Tickets issued before the failure were already failed —
    /// not dropped — with the fsync's typed error; only commits
    /// registered after the re-arm proceed.
    pub fn mark_all_durable(&self) {
        let mut st = self.lock();
        if st.durable < st.appended {
            st.durable = st.appended;
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        st.failed = None;
        self.cv.notify_all();
    }

    /// The error that failed the last batch fsync, if writes are still
    /// un-re-armed (see [`GroupCommit::mark_all_durable`]).
    pub fn failure(&self) -> Option<Error> {
        self.lock().failed.clone()
    }

    /// Block until `ticket` is durable. `sync` forces the log to stable
    /// storage; the elected leader calls it once per batch, outside both
    /// the engine commit lock (the caller already released it) and this
    /// queue's own lock. Returns `Ok` strictly after an fsync (or
    /// checkpoint) covered the ticket.
    pub fn wait_durable(
        &self,
        ticket: u64,
        mut sync: impl FnMut() -> Result<()>,
    ) -> Result<()> {
        let mut st = self.lock();
        loop {
            if st.durable >= ticket {
                return Ok(());
            }
            if let Some(e) = &st.failed {
                return Err(e.clone());
            }
            if st.leader {
                // Another waiter is batching; it will wake us. The
                // timeout is defensive (a panicking leader re-elects).
                let (g, _) = self
                    .cv
                    .wait_timeout(st, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner);
                st = g;
                continue;
            }
            st.leader = true;
            // Gather: linger so later commits can join this batch.
            let target = st.durable + u64::from(self.cfg.max_batch.max(1));
            let deadline = Instant::now() + self.cfg.max_delay;
            while st.appended < target {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (g, _) = self
                    .cv
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                st = g;
            }
            let batch_end = st.appended;
            drop(st);
            let r = sync();
            st = self.lock();
            match r {
                Ok(()) => {
                    if st.durable < batch_end {
                        st.durable = batch_end;
                    }
                    self.fsyncs.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => st.failed = Some(e),
            }
            st.leader = false;
            self.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    fn immediate() -> GroupCommitConfig {
        GroupCommitConfig {
            max_batch: 1,
            max_delay: Duration::ZERO,
        }
    }

    #[test]
    fn single_commit_syncs_once_and_acks() {
        let gc = GroupCommit::new(immediate());
        let t = gc.register();
        let syncs = AtomicU32::new(0);
        gc.wait_durable(t, || {
            syncs.fetch_add(1, Ordering::Relaxed);
            Ok(())
        })
        .unwrap();
        assert_eq!(syncs.load(Ordering::Relaxed), 1);
        assert_eq!(gc.commits(), 1);
        assert_eq!(gc.fsyncs(), 1);
    }

    #[test]
    fn a_batch_of_registered_commits_shares_one_fsync() {
        let gc = GroupCommit::new(GroupCommitConfig {
            max_batch: 64,
            max_delay: Duration::ZERO,
        });
        let tickets: Vec<u64> = (0..5).map(|_| gc.register()).collect();
        let syncs = AtomicU32::new(0);
        // All five were appended before the leader fsyncs, so the first
        // waiter's batch covers every ticket.
        for &t in &tickets {
            gc.wait_durable(t, || {
                syncs.fetch_add(1, Ordering::Relaxed);
                Ok(())
            })
            .unwrap();
        }
        assert_eq!(syncs.load(Ordering::Relaxed), 1);
        assert_eq!(gc.commits(), 5);
        assert_eq!(gc.fsyncs(), 1);
    }

    #[test]
    fn failed_fsync_poisons_later_tickets_not_earlier_ones() {
        let gc = GroupCommit::new(immediate());
        let t1 = gc.register();
        gc.wait_durable(t1, || Ok(())).unwrap();
        let t2 = gc.register();
        let err = gc
            .wait_durable(t2, || Err(Error::Io("log device gone".into())))
            .unwrap_err();
        assert!(matches!(err, Error::Io(_)));
        // t1 was durable before the failure and stays acknowledged.
        gc.wait_durable(t1, || panic!("no new fsync for old tickets"))
            .unwrap();
        // Later tickets keep failing: the durable prefix is unknown.
        let t3 = gc.register();
        assert!(gc.wait_durable(t3, || Ok(())).is_err());
        assert!(gc.failure().is_some());
    }

    #[test]
    fn checkpoint_rearms_a_failed_queue() {
        let gc = GroupCommit::new(immediate());
        let t1 = gc.register();
        assert!(gc
            .wait_durable(t1, || Err(Error::Io("fsync failed".into())))
            .is_err());
        let t2 = gc.register();
        assert!(gc.wait_durable(t2, || Ok(())).is_err(), "still failed");
        // A checkpoint durably materialized everything by other means.
        gc.mark_all_durable();
        assert!(gc.failure().is_none());
        gc.wait_durable(t2, || panic!("durable via checkpoint"))
            .unwrap();
        // New commits proceed normally after the re-arm.
        let t3 = gc.register();
        gc.wait_durable(t3, || Ok(())).unwrap();
    }

    #[test]
    fn checkpoint_retires_outstanding_tickets() {
        let gc = GroupCommit::new(immediate());
        let t = gc.register();
        gc.mark_all_durable();
        gc.wait_durable(t, || panic!("already durable via checkpoint"))
            .unwrap();
        assert_eq!(gc.fsyncs(), 1);
    }

    #[test]
    fn concurrent_waiters_all_ack_and_batch() {
        let gc = Arc::new(GroupCommit::new(GroupCommitConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(20),
        }));
        let syncs = Arc::new(AtomicU32::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let gc = gc.clone();
                let syncs = syncs.clone();
                scope.spawn(move || {
                    let t = gc.register();
                    gc.wait_durable(t, || {
                        syncs.fetch_add(1, Ordering::Relaxed);
                        Ok(())
                    })
                    .unwrap();
                });
            }
        });
        assert_eq!(gc.commits(), 8);
        let n = syncs.load(Ordering::Relaxed);
        assert!(n >= 1, "at least one fsync happened");
        assert!(
            u64::from(n) == gc.fsyncs(),
            "every sync call is accounted"
        );
        assert!(n <= 8, "never more fsyncs than commits");
    }
}
