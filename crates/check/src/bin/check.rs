//! `check` — fsck for tdbms database directories.
//!
//! ```text
//! check <dir>            verify checksums, structure, temporal invariants
//! check <dir> --repair   also salvage from the WAL / quarantine, then
//!                        checkpoint the repaired state
//! ```
//!
//! Exit status: 0 clean, 1 integrity findings, 2 operational error.

use std::process::ExitCode;

use tdbms_check::CheckedDb;

const USAGE: &str = "usage: check <database-dir> [--repair]";

fn main() -> ExitCode {
    let mut dir: Option<String> = None;
    let mut repair = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--repair" => repair = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if dir.is_none() && !other.starts_with('-') => {
                dir = Some(other.to_string());
            }
            other => {
                eprintln!("check: unexpected argument {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match run(&dir, repair) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("check: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(dir: &str, repair: bool) -> tdbms_kernel::Result<bool> {
    let mut db = CheckedDb::open(dir)?;
    let report = if repair { db.repair()? } else { db.check()? };
    print!("{}", report.render());
    Ok(report.is_clean())
}
