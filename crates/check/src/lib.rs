//! # tdbms-check
//!
//! An fsck-style integrity checker, scrubber, and salvager for tdbms
//! databases. Three layers of defense against at-rest corruption:
//!
//! 1. **Scrub** — every page of every cataloged file is read raw (no
//!    buffering, so stale frames cannot mask rot) and verified against the
//!    out-of-band checksum sidecar (`sums.tdbms`), with all traffic
//!    accounted to a named `"scrub"` I/O phase.
//! 2. **Structural validation** — page kind tags against the layout each
//!    access method implies (hash: buckets then overflow; ISAM: data,
//!    directory levels, overflow; heap: data only), slot counts against
//!    page capacity, overflow pointers in range and in the overflow
//!    region, chain acyclicity, orphaned overflow pages, stored tuple
//!    counts against reachable rows, and per-key temporal invariants
//!    (interval ordering; live-version overlap).
//! 3. **Salvage** — a page that fails its checksum or its structural
//!    checks is restored byte-for-byte from the newest *committed*
//!    after-image still in the write-ahead log. When no image survives,
//!    the repair degrades gracefully: the page is quarantined
//!    (reinitialized empty, in the kind its region requires), corrupt
//!    overflow pointers are clipped so damaged chain tails are truncated
//!    rather than followed, orphaned rows are discarded with a loss
//!    report, tuple counts are recomputed, and secondary indexes are
//!    rebuilt from the surviving base rows.
//!
//! [`check_database`] / [`repair_database`] operate on any live pager +
//! catalog (tests drive them against in-memory databases); [`CheckedDb`]
//! opens a database *directory* the way recovery does — replaying the
//! committed WAL tail but, unlike a normal open, **not** truncating the
//! log, because the log's page images are exactly the salvage source
//! repair needs.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::Range;
use std::path::PathBuf;

use tdbms_kernel::{Error, Result, TemporalAttr, TimeVal};
use tdbms_storage::{
    decode_catalog, encode_catalog, load_catalog, page_capacity,
    save_catalog, Catalog, ChecksumSet, FileDisk, FileId, KeyKind, KeySpec,
    Page, PageKind, Pager, RelFile, RelId, StoredRelation, NO_PAGE,
};
use tdbms_wal::{replay, FileLog, Record, RecoveryPlan, Wal};

/// File name of the write-ahead log inside a database directory.
pub const WAL_NAME: &str = "wal.tdbms";

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Corruption or inconsistency. A report with errors is not clean.
    Error,
    /// Suspicious but not data-threatening (e.g. an empty orphan page).
    Warning,
    /// Repair restored the damaged state exactly (WAL image or rebuild).
    Repaired,
    /// Repair had to discard data; the detail says precisely what.
    Lost,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Repaired => "repaired",
            Severity::Lost => "lost",
        })
    }
}

/// One fact the checker established, locatable down to a page.
#[derive(Debug, Clone)]
pub struct Finding {
    /// How serious it is.
    pub severity: Severity,
    /// The relation (or `relation.index`) the page belongs to, if known.
    pub relation: Option<String>,
    /// The storage file number, if the finding is about one.
    pub file: Option<u32>,
    /// The page number within the file, if the finding is about one.
    pub page: Option<u32>,
    /// Human-readable description; stable enough to grep in CI.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.severity)?;
        if let Some(r) = &self.relation {
            write!(f, " relation {r}")?;
        }
        if let Some(n) = self.file {
            write!(f, " file {n}")?;
        }
        if let Some(p) = self.page {
            write!(f, " page {p}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// The machine-readable outcome of a check or repair run.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// Everything found, in discovery order.
    pub findings: Vec<Finding>,
    /// Non-temporary relations visited.
    pub relations_checked: usize,
    /// Pages read across all visited files (repair passes re-read).
    pub pages_checked: u64,
}

impl CheckReport {
    /// True when no finding has [`Severity::Error`]. Warnings, repairs,
    /// and loss reports do not make a database dirty — a *subsequent*
    /// check after a repair must come back clean.
    pub fn is_clean(&self) -> bool {
        !self.findings.iter().any(|f| f.severity == Severity::Error)
    }

    fn count(&self, s: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity == s).count()
    }

    /// Line-oriented rendering: a magic line, one line per finding, a
    /// summary line, and a final `clean` / `dirty` verdict line.
    pub fn render(&self) -> String {
        let mut out = String::from("tdbms-check 1\n");
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "checked {} relations, {} pages: {} errors, {} warnings, \
             {} repaired, {} lost\n",
            self.relations_checked,
            self.pages_checked,
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Repaired),
            self.count(Severity::Lost),
        ));
        out.push_str(if self.is_clean() {
            "clean\n"
        } else {
            "dirty\n"
        });
        out
    }
}

/// The page-kind layout an access method imposes on its file.
#[derive(Debug, Clone)]
enum Layout {
    Heap,
    Hash {
        nbuckets: u32,
    },
    Isam {
        n_data: u32,
        levels: Vec<Range<u32>>,
    },
}

impl Layout {
    fn of(file: &RelFile) -> Layout {
        match file {
            RelFile::Heap(_) => Layout::Heap,
            RelFile::Hash(f) => Layout::Hash {
                nbuckets: f.nbuckets,
            },
            RelFile::Isam(f) => Layout::Isam {
                n_data: f.n_data_pages,
                levels: f.levels.clone(),
            },
        }
    }

    /// The kind every page in this region must carry.
    fn expected_kind(&self, page_no: u32) -> PageKind {
        match self {
            Layout::Heap => PageKind::Data,
            Layout::Hash { nbuckets } => {
                if page_no < *nbuckets {
                    PageKind::Data
                } else {
                    PageKind::Overflow
                }
            }
            Layout::Isam { n_data, levels } => {
                if page_no < *n_data {
                    PageKind::Data
                } else if levels.iter().any(|r| r.contains(&page_no)) {
                    PageKind::Directory
                } else {
                    PageKind::Overflow
                }
            }
        }
    }

    /// Do pages of this layout chain to overflow pages?
    fn chains(&self) -> bool {
        !matches!(self, Layout::Heap)
    }

    /// The chain heads (primary/data pages) to walk from.
    fn heads(&self) -> Range<u32> {
        match self {
            Layout::Heap => 0..0,
            Layout::Hash { nbuckets } => 0..*nbuckets,
            Layout::Isam { n_data, .. } => 0..*n_data,
        }
    }

    /// The minimum page count the layout metadata implies.
    fn min_len(&self) -> u32 {
        match self {
            Layout::Heap => 0,
            Layout::Hash { nbuckets } => *nbuckets,
            Layout::Isam { n_data, levels } => {
                levels.iter().map(|r| r.end).max().unwrap_or(0).max(*n_data)
            }
        }
    }
}

/// What role a checkable file plays for its relation — the role decides
/// which row-count ledger the audit is compared against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UnitKind {
    /// The base file; reachable rows must equal the stored tuple count.
    Base,
    /// A secondary index; an entry-count mismatch is only a warning.
    Index,
    /// A clustered history sidecar; reachable rows must equal the
    /// migrated-row count the catalog's `history` line records.
    History,
}

/// One checkable file: a relation's base file, one of its indexes, or its
/// clustered history sidecar.
struct Unit {
    label: String,
    rel: RelId,
    kind: UnitKind,
    file: FileId,
    layout: Layout,
    row_width: usize,
    /// Key width for ISAM directory pages (their rows are bare keys).
    key_len: usize,
}

impl Unit {
    fn finding(
        &self,
        severity: Severity,
        page: Option<u32>,
        detail: String,
    ) -> Finding {
        Finding {
            severity,
            relation: Some(self.label.clone()),
            file: Some(self.file.0),
            page,
            detail,
        }
    }
}

fn key_len_of(file: &RelFile) -> usize {
    match file {
        RelFile::Isam(f) => f.key.len,
        _ => 0,
    }
}

fn units_of(catalog: &Catalog) -> Vec<Unit> {
    let mut units = Vec::new();
    for (id, rel) in catalog.iter() {
        if rel.temporary {
            continue;
        }
        units.push(Unit {
            label: rel.name.clone(),
            rel: id,
            kind: UnitKind::Base,
            file: rel.file.file_id(),
            layout: Layout::of(&rel.file),
            row_width: rel.file.row_width(),
            key_len: key_len_of(&rel.file),
        });
        for ix in &rel.indexes {
            let f = ix.index.file();
            units.push(Unit {
                label: format!("{}.{}", rel.name, ix.name),
                rel: id,
                kind: UnitKind::Index,
                file: f.file_id(),
                layout: Layout::of(f),
                row_width: f.row_width(),
                key_len: key_len_of(f),
            });
        }
        if let Some(h) = &rel.history {
            // The sidecar is heap-laid-out (all-Data pages, no chains);
            // its per-key clustering is an in-memory directory, not an
            // on-disk structure, so Heap is the right layout to audit.
            units.push(Unit {
                label: format!("{}.history", rel.name),
                rel: id,
                kind: UnitKind::History,
                file: h.file_id(),
                layout: Layout::Heap,
                row_width: h.row_width(),
                key_len: 0,
            });
        }
    }
    units
}

/// What one pass over a file's pages established.
#[derive(Debug, Default)]
struct Audit {
    n_pages: u32,
    missing: bool,
    short: bool,
    /// Pages needing full restoration, with the old slot count when the
    /// header was still plausible (for the loss report).
    bad: BTreeMap<u32, Option<usize>>,
    /// Pages whose rows are intact but whose overflow pointer is corrupt
    /// (out of range, wrong region, or closing a cycle): repair clips the
    /// pointer instead of quarantining the rows.
    clip: BTreeSet<u32>,
    /// Orphaned overflow pages that still carry rows, with their counts.
    data_orphans: BTreeMap<u32, usize>,
    /// Rows on pages a scan can actually reach.
    reachable_rows: u64,
}

impl Audit {
    fn sound(&self) -> bool {
        !self.missing
            && !self.short
            && self.bad.is_empty()
            && self.clip.is_empty()
            && self.data_orphans.is_empty()
    }

    fn needs_page_repair(&self) -> bool {
        self.short
            || !self.bad.is_empty()
            || !self.clip.is_empty()
            || !self.data_orphans.is_empty()
    }
}

fn corruption_detail(e: Error) -> String {
    match e {
        Error::Corruption { detail, .. } => detail,
        other => other.to_string(),
    }
}

/// One full structural + checksum pass over a unit's pages. Read-only:
/// every problem becomes a finding and an entry in the returned [`Audit`];
/// fixing anything is [`repair_database`]'s job.
fn audit_unit(
    pager: &Pager,
    unit: &Unit,
    findings: &mut Vec<Finding>,
) -> Result<Audit> {
    let mut audit = Audit::default();
    let n = match pager.page_count(unit.file) {
        Ok(n) => n,
        Err(_) => {
            findings.push(unit.finding(
                Severity::Error,
                None,
                "storage file is missing".into(),
            ));
            audit.missing = true;
            return Ok(audit);
        }
    };
    audit.n_pages = n;
    let min = unit.layout.min_len();
    if n < min {
        findings.push(unit.finding(
            Severity::Error,
            None,
            format!(
                "file has {n} pages but the layout requires at least {min}"
            ),
        ));
        audit.short = true;
    }

    let mut ovs = vec![NO_PAGE; n as usize];
    let mut counts = vec![0usize; n as usize];
    let sums = pager.checksums_snapshot();
    for p in 0..n {
        let page = match pager.read_page_raw(unit.file, p) {
            Ok(page) => page,
            Err(e) => {
                findings.push(unit.finding(
                    Severity::Error,
                    Some(p),
                    format!("unreadable page: {e}"),
                ));
                audit.bad.insert(p, None);
                continue;
            }
        };
        counts[p as usize] = page.count();
        ovs[p as usize] = page.overflow();

        if let Some(sums) = &sums {
            if let Err(e) = sums.verify(unit.file, p, &page) {
                findings.push(unit.finding(
                    Severity::Error,
                    Some(p),
                    corruption_detail(e),
                ));
                audit.bad.insert(p, None);
                continue;
            }
        }

        let want = unit.layout.expected_kind(p);
        let width = if want == PageKind::Directory {
            unit.key_len
        } else {
            unit.row_width
        };
        let cap = page_capacity(width);
        let salvage_count = (page.count() <= cap).then(|| page.count());

        let kind = match page.kind() {
            Ok(k) => k,
            Err(e) => {
                findings.push(unit.finding(
                    Severity::Error,
                    Some(p),
                    corruption_detail(e),
                ));
                audit.bad.insert(p, salvage_count);
                continue;
            }
        };
        if kind != want {
            findings.push(unit.finding(
                Severity::Error,
                Some(p),
                format!("page kind is {kind:?} where the layout expects {want:?}"),
            ));
            audit.bad.insert(p, salvage_count);
            continue;
        }
        if page.count() > cap {
            findings.push(unit.finding(
                Severity::Error,
                Some(p),
                format!(
                    "slot count {} exceeds the page capacity of {cap} rows",
                    page.count()
                ),
            ));
            audit.bad.insert(p, None);
            continue;
        }
        let ov = page.overflow();
        if ov != NO_PAGE {
            if !unit.layout.chains() || want == PageKind::Directory {
                findings.push(unit.finding(
                    Severity::Error,
                    Some(p),
                    format!("unexpected overflow pointer {ov} on a {want:?} page"),
                ));
                audit.clip.insert(p);
            } else if ov >= n {
                findings.push(unit.finding(
                    Severity::Error,
                    Some(p),
                    format!("overflow pointer {ov} points beyond the {n}-page file"),
                ));
                audit.clip.insert(p);
            } else if unit.layout.expected_kind(ov) != PageKind::Overflow {
                findings.push(unit.finding(
                    Severity::Error,
                    Some(p),
                    format!("overflow pointer {ov} targets a page outside the overflow region"),
                ));
                audit.clip.insert(p);
            }
        }
    }

    // Chains stop at any page slated for repair.
    for &p in audit.bad.keys() {
        ovs[p as usize] = NO_PAGE;
    }
    for &p in &audit.clip {
        ovs[p as usize] = NO_PAGE;
    }

    // Walk every chain once; a revisit is a cycle or a shared tail.
    let mut visited: BTreeSet<u32> = BTreeSet::new();
    if unit.layout.chains() {
        for head in unit.layout.heads() {
            if head >= n || audit.bad.contains_key(&head) {
                continue;
            }
            let mut prev = head;
            let mut p = ovs[head as usize];
            while p != NO_PAGE {
                if !visited.insert(p) {
                    findings.push(unit.finding(
                        Severity::Error,
                        Some(p),
                        format!(
                            "overflow page is reached twice (cycle or \
                             shared chain tail; second reference from \
                             page {prev})"
                        ),
                    ));
                    audit.clip.insert(prev);
                    break;
                }
                prev = p;
                p = ovs[p as usize];
            }
        }
        // Overflow-region pages no chain reaches are orphans: their rows
        // are invisible to every scan and lookup.
        for p in 0..n {
            if unit.layout.expected_kind(p) == PageKind::Overflow
                && !visited.contains(&p)
                && !audit.bad.contains_key(&p)
            {
                if counts[p as usize] > 0 {
                    findings.push(unit.finding(
                        Severity::Error,
                        Some(p),
                        format!(
                            "orphaned overflow page with {} rows is \
                             unreachable from any chain",
                            counts[p as usize]
                        ),
                    ));
                    audit.data_orphans.insert(p, counts[p as usize]);
                } else {
                    findings.push(unit.finding(
                        Severity::Warning,
                        Some(p),
                        "empty orphaned overflow page".into(),
                    ));
                }
            }
        }
    }

    // Rows a scan can reach: all good pages for a heap; heads plus
    // visited overflow pages for chained layouts.
    match unit.layout {
        Layout::Heap => {
            for p in 0..n {
                if !audit.bad.contains_key(&p) {
                    audit.reachable_rows += counts[p as usize] as u64;
                }
            }
        }
        _ => {
            for head in unit.layout.heads() {
                if head < n && !audit.bad.contains_key(&head) {
                    audit.reachable_rows += counts[head as usize] as u64;
                }
            }
            for &p in &visited {
                if !audit.bad.contains_key(&p) {
                    audit.reachable_rows += counts[p as usize] as u64;
                }
            }
        }
    }
    Ok(audit)
}

fn render_key(spec: &KeySpec, bytes: &[u8]) -> String {
    match spec.kind {
        KeyKind::I4 => bytes
            .try_into()
            .map(|b| i32::from_le_bytes(b).to_string())
            .unwrap_or_else(|_| format!("{bytes:?}")),
        KeyKind::Bytes => {
            format!("{:?}", String::from_utf8_lossy(bytes).trim_end())
        }
    }
}

/// Temporal invariants over a structurally sound base file: interval
/// ordering per row (errors — the DML can never produce a reversed
/// interval) and per-key valid-time overlap among live versions (a
/// warning — TQuel lets a user append duplicate keys on purpose).
fn check_temporal(
    pager: &Pager,
    unit: &Unit,
    rel: &StoredRelation,
    findings: &mut Vec<Finding>,
) -> Result<()> {
    let schema = &rel.schema;
    let codec = &rel.codec;
    let vf = schema.temporal_index(TemporalAttr::ValidFrom);
    let vt = schema.temporal_index(TemporalAttr::ValidTo);
    let ts = schema.temporal_index(TemporalAttr::TransactionStart);
    let tp = schema.temporal_index(TemporalAttr::TransactionStop);
    if vf.is_none() && ts.is_none() {
        return Ok(());
    }
    let key = rel.key_attr.map(|a| KeySpec::for_attr(codec, a));
    let mut live_by_key: BTreeMap<Vec<u8>, Vec<(TimeVal, TimeVal)>> =
        BTreeMap::new();
    let mut cur = rel.file.scan();
    while let Some((tid, row)) = cur.next(pager, &rel.file)? {
        if let (Some(f), Some(t)) = (vf, vt) {
            let a = codec.get_time(&row, f);
            let b = codec.get_time(&row, t);
            if a > b {
                findings.push(unit.finding(
                    Severity::Error,
                    Some(tid.page),
                    format!(
                        "reversed valid interval [{}, {}) in slot {}",
                        a.as_secs(),
                        b.as_secs(),
                        tid.slot
                    ),
                ));
            }
        }
        if let (Some(s), Some(e)) = (ts, tp) {
            let a = codec.get_time(&row, s);
            let b = codec.get_time(&row, e);
            if a > b {
                findings.push(unit.finding(
                    Severity::Error,
                    Some(tid.page),
                    format!(
                        "reversed transaction interval [{}, {}) in slot {}",
                        a.as_secs(),
                        b.as_secs(),
                        tid.slot
                    ),
                ));
            }
        }
        if let (Some(k), Some(f), Some(t)) = (key.as_ref(), vf, vt) {
            let live =
                tp.is_none_or(|i| codec.get_time(&row, i).is_forever());
            if live {
                live_by_key
                    .entry(k.extract(&row).to_vec())
                    .or_default()
                    .push((
                        codec.get_time(&row, f),
                        codec.get_time(&row, t),
                    ));
            }
        }
    }
    if let Some(spec) = key {
        for (kb, mut ivs) in live_by_key {
            if ivs.len() < 2 {
                continue;
            }
            ivs.sort();
            if ivs.windows(2).any(|w| w[0].1 > w[1].0) {
                findings.push(unit.finding(
                    Severity::Warning,
                    None,
                    format!(
                        "key {} has live versions with overlapping valid \
                         intervals",
                        render_key(&spec, &kb)
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// Validate every non-temporary relation (and its indexes) in a live
/// database. Read-only; all scrub traffic is attributed to the `"scrub"`
/// I/O phase.
pub fn check_database(
    pager: &Pager,
    catalog: &Catalog,
) -> Result<CheckReport> {
    let mut report = CheckReport::default();
    let units = units_of(catalog);
    pager.begin_phase("scrub");
    let outcome: Result<()> = (|| {
        for unit in &units {
            let audit = audit_unit(pager, unit, &mut report.findings)?;
            report.pages_checked += audit.n_pages as u64;
            if !audit.sound() {
                continue;
            }
            let rel = catalog.get(unit.rel);
            match unit.kind {
                UnitKind::Index => {
                    if audit.reachable_rows != rel.tuple_count {
                        report.findings.push(unit.finding(
                            Severity::Warning,
                            None,
                            format!(
                                "index holds {} entries for a relation \
                                 storing {} rows",
                                audit.reachable_rows, rel.tuple_count
                            ),
                        ));
                    }
                }
                UnitKind::History => {
                    let recorded =
                        rel.history.as_ref().map(|h| h.rows()).unwrap_or(0);
                    if audit.reachable_rows != recorded {
                        report.findings.push(unit.finding(
                            Severity::Error,
                            None,
                            format!(
                                "catalog records {recorded} migrated rows \
                                 but {} are reachable",
                                audit.reachable_rows
                            ),
                        ));
                    }
                }
                UnitKind::Base => {
                    if audit.reachable_rows != rel.tuple_count {
                        report.findings.push(unit.finding(
                            Severity::Error,
                            None,
                            format!(
                                "catalog records {} stored rows but {} are \
                                 reachable",
                                rel.tuple_count, audit.reachable_rows
                            ),
                        ));
                    }
                    check_temporal(pager, unit, rel, &mut report.findings)?;
                }
            }
        }
        // Files on disk the catalog does not know about.
        let referenced: BTreeSet<FileId> = catalog
            .iter()
            .flat_map(|(_, r)| {
                std::iter::once(r.file.file_id())
                    .chain(r.indexes.iter().map(|ix| ix.index.file_id()))
                    .chain(r.history.iter().map(|h| h.file_id()))
            })
            .collect();
        for (f, _) in pager.file_lengths()? {
            if !referenced.contains(&f) {
                report.findings.push(Finding {
                    severity: Severity::Warning,
                    relation: None,
                    file: Some(f.0),
                    page: None,
                    detail: "storage file is not referenced by the catalog"
                        .into(),
                });
            }
        }
        Ok(())
    })();
    pager.end_phase();
    outcome?;
    report.relations_checked =
        catalog.iter().filter(|(_, r)| !r.temporary).count();
    Ok(report)
}

/// Repair everything [`check_database`] would flag, salvaging from `plan`
/// (the recovery plan of the *untruncated* log) where possible:
///
/// 1. Bad pages are restored from the newest committed WAL image, or
///    quarantined (reinitialized empty in the region's kind) when no
///    image survives; corrupt overflow pointers are clipped; files
///    shorter than their layout are re-extended.
/// 2. A second audit over the repaired structure discards orphaned
///    overflow rows (damaged chain tails) with a precise loss report and
///    corrects each relation's stored tuple count.
/// 3. Relations whose pages changed get their secondary indexes rebuilt
///    from the surviving base rows.
///
/// The caller persists the result ([`CheckedDb::repair`] syncs files and
/// saves the catalog and sidecar; in-memory callers need not).
pub fn repair_database(
    pager: &Pager,
    catalog: &mut Catalog,
    plan: &RecoveryPlan,
) -> Result<CheckReport> {
    let mut report = CheckReport::default();
    let units = units_of(catalog);
    let mut page_repairs: BTreeSet<usize> = BTreeSet::new();
    pager.begin_phase("scrub");
    let outcome: Result<()> = (|| {
        // Pass 1: detect, then restore / quarantine / clip page by page.
        for unit in &units {
            let audit = audit_unit(pager, unit, &mut report.findings)?;
            report.pages_checked += audit.n_pages as u64;
            if audit.missing {
                continue;
            }
            if audit.needs_page_repair() {
                page_repairs.insert(unit.rel.0);
            }
            let mut n = audit.n_pages;
            while n < unit.layout.min_len() {
                pager
                    .append_page(unit.file, unit.layout.expected_kind(n))?;
                if let Some(img) = plan.latest_image(unit.file, n) {
                    let img = img.clone();
                    pager.write_page_raw(unit.file, n, &img)?;
                    report.findings.push(unit.finding(
                        Severity::Repaired,
                        Some(n),
                        format!(
                            "missing page re-created from the newest \
                             committed log image (lsn {})",
                            img.lsn()
                        ),
                    ));
                } else {
                    report.findings.push(unit.finding(
                        Severity::Lost,
                        Some(n),
                        format!(
                            "missing page re-created empty as \
                             {:?} (no surviving log image)",
                            unit.layout.expected_kind(n)
                        ),
                    ));
                }
                n += 1;
            }
            for (&p, &old_count) in &audit.bad {
                if let Some(img) = plan.latest_image(unit.file, p) {
                    let img = img.clone();
                    pager.write_page_raw(unit.file, p, &img)?;
                    report.findings.push(unit.finding(
                        Severity::Repaired,
                        Some(p),
                        format!(
                            "restored from the newest committed log \
                             image (lsn {})",
                            img.lsn()
                        ),
                    ));
                } else {
                    let kind = unit.layout.expected_kind(p);
                    pager.write_page_raw(unit.file, p, &Page::new(kind))?;
                    let loss = match old_count {
                        Some(c) => format!("{c} rows lost"),
                        None => "an unknown number of rows lost".into(),
                    };
                    report.findings.push(unit.finding(
                        Severity::Lost,
                        Some(p),
                        format!(
                            "no surviving log image: quarantined and \
                             reinitialized as an empty {kind:?} page \
                             ({loss})"
                        ),
                    ));
                }
            }
            for &p in &audit.clip {
                if let Some(img) = plan.latest_image(unit.file, p) {
                    let img = img.clone();
                    pager.write_page_raw(unit.file, p, &img)?;
                    report.findings.push(unit.finding(
                        Severity::Repaired,
                        Some(p),
                        format!(
                            "restored from the newest committed log \
                             image (lsn {})",
                            img.lsn()
                        ),
                    ));
                } else {
                    let mut page = pager.read_page_raw(unit.file, p)?;
                    page.set_overflow(NO_PAGE);
                    pager.write_page_raw(unit.file, p, &page)?;
                    report.findings.push(unit.finding(
                        Severity::Lost,
                        Some(p),
                        "corrupt overflow pointer cleared; the chained \
                         tail is truncated"
                            .into(),
                    ));
                }
            }
        }
        // Pass 2: audit the repaired structure, discard orphaned rows,
        // and correct stored tuple counts.
        for unit in &units {
            let audit = audit_unit(pager, unit, &mut Vec::new())?;
            for (&p, &rows) in &audit.data_orphans {
                page_repairs.insert(unit.rel.0);
                pager.write_page_raw(
                    unit.file,
                    p,
                    &Page::new(PageKind::Overflow),
                )?;
                report.findings.push(unit.finding(
                    Severity::Lost,
                    Some(p),
                    format!(
                        "orphaned overflow page discarded ({rows} rows \
                         were unreachable from any chain)"
                    ),
                ));
            }
            if unit.kind == UnitKind::Base && !audit.missing {
                let rel = catalog.get_mut(unit.rel);
                if rel.tuple_count != audit.reachable_rows {
                    let old = rel.tuple_count;
                    rel.tuple_count = audit.reachable_rows;
                    let severity = if audit.reachable_rows < old {
                        Severity::Lost
                    } else {
                        Severity::Repaired
                    };
                    report.findings.push(unit.finding(
                        severity,
                        None,
                        format!(
                            "stored tuple count corrected from {old} to {}",
                            audit.reachable_rows
                        ),
                    ));
                }
            }
            if unit.kind == UnitKind::History && !audit.missing {
                let rel = catalog.get_mut(unit.rel);
                let Some(h) = &rel.history else { continue };
                if h.rows() != audit.reachable_rows {
                    // Rebuild the in-memory directory from the repaired
                    // pages; `reopen` recounts the surviving rows and
                    // reassigns pages to clusters, so subsequent keyed
                    // history reads stay exact.
                    let old = h.rows();
                    let fresh = tdbms_storage::ClusteredHistory::reopen(
                        pager,
                        h.file_id(),
                        h.row_width(),
                        h.key(),
                        h.max_stop(),
                    )?;
                    let severity = if fresh.rows() < old {
                        Severity::Lost
                    } else {
                        Severity::Repaired
                    };
                    report.findings.push(unit.finding(
                        severity,
                        None,
                        format!(
                            "migrated-row count corrected from {old} to {}",
                            fresh.rows()
                        ),
                    ));
                    rel.history = Some(std::sync::Arc::new(fresh));
                }
            }
        }
        // Pass 3: rebuild the indexes of every relation whose pages
        // changed — base-page loss invalidates entry addresses, and an
        // index page restored empty must be repopulated.
        let rebuild: Vec<RelId> = catalog
            .iter()
            .filter(|(id, r)| {
                page_repairs.contains(&id.0) && !r.indexes.is_empty()
            })
            .map(|(id, _)| id)
            .collect();
        for id in rebuild {
            let rel = catalog.get_mut(id);
            rel.rebuild_indexes(pager)?;
            report.findings.push(Finding {
                severity: Severity::Repaired,
                relation: Some(catalog.get(id).name.clone()),
                file: None,
                page: None,
                detail: "secondary indexes rebuilt from the base relation"
                    .into(),
            });
        }
        Ok(())
    })();
    pager.end_phase();
    outcome?;
    report.relations_checked =
        catalog.iter().filter(|(_, r)| !r.temporary).count();
    Ok(report)
}

/// A database directory opened for checking: recovery has replayed the
/// committed WAL tail into the page files, but the log itself is kept
/// untruncated so its page images remain available as salvage material.
///
/// This deliberately bypasses the normal `Database::open` path, whose
/// trailing checkpoint would truncate the log and destroy exactly the
/// images repair needs.
pub struct CheckedDb {
    /// The database directory.
    pub dir: PathBuf,
    /// Pager over the replayed page files (checksum sidecar installed
    /// when `sums.tdbms` exists).
    pub pager: Pager,
    /// The catalog (the WAL-carried copy when one is committed, since it
    /// supersedes `catalog.tdbms` after a crash).
    pub catalog: Catalog,
    /// The recovery plan — the salvage source.
    pub plan: RecoveryPlan,
    wal: Wal,
}

impl CheckedDb {
    /// Open `dir` the way recovery does, minus the log truncation.
    pub fn open(dir: impl Into<PathBuf>) -> Result<CheckedDb> {
        let dir = dir.into();
        let mut disk = Box::new(FileDisk::open(&dir)?);
        let log = FileLog::open(dir.join(WAL_NAME))?;
        let (wal, plan) = Wal::open(Box::new(log))?;
        replay(&plan, disk.as_mut())?;
        let pager = Pager::new(disk);
        if let Some(mut sums) = ChecksumSet::load(&dir)? {
            // The sidecar was saved at the last checkpoint; replay may
            // just have written newer committed images over those pages.
            // Adopt the images' sums in commit order (newest wins — the
            // same order replay applies them), so the scrub's baseline is
            // the committed content, not the stale checkpoint.
            for txn in &plan.txns {
                for (_, rec) in txn {
                    match rec {
                        Record::PageImage {
                            file,
                            page_no,
                            image,
                        } => {
                            sums.record(*file, *page_no, image);
                        }
                        Record::DropFile { file } => sums.drop_file(*file),
                        _ => {}
                    }
                }
            }
            pager.set_checksums(Some(sums));
        }
        let catalog = match &plan.catalog {
            Some((_, text)) => decode_catalog(text, &pager)?,
            None => load_catalog(&dir, &pager)?.unwrap_or_default(),
        };
        Ok(CheckedDb {
            dir,
            pager,
            catalog,
            plan,
            wal,
        })
    }

    /// Run a read-only integrity check.
    pub fn check(&mut self) -> Result<CheckReport> {
        check_database(&self.pager, &self.catalog)
    }

    /// Repair in place, then make the repaired state durable exactly like
    /// a checkpoint: data files synced first, then catalog + sidecar,
    /// then the log truncated to a fresh header (with the catalog riding
    /// along, as every checkpoint truncation does). When nothing needed
    /// repairing the database is left byte-identical.
    pub fn repair(&mut self) -> Result<CheckReport> {
        let report =
            repair_database(&self.pager, &mut self.catalog, &self.plan)?;
        let repaired = report.findings.iter().any(|f| {
            matches!(f.severity, Severity::Repaired | Severity::Lost)
        });
        if repaired {
            self.pager.sync_all()?;
            save_catalog(&self.catalog, &self.dir)?;
            if let Some(sums) = self.pager.checksums_snapshot() {
                sums.save(&self.dir)?;
            }
            let clock = match &self.plan.catalog {
                Some((clock, _)) => {
                    // The WAL's clock is the newest; keep the on-disk copy
                    // in step before the log stops carrying it.
                    std::fs::write(self.dir.join("clock.tdbms"), clock)?;
                    clock.clone()
                }
                None => {
                    std::fs::read_to_string(self.dir.join("clock.tdbms"))
                        .unwrap_or_else(|_| "0".into())
                }
            };
            let snapshot = self.pager.file_lengths()?;
            let catalog_text = encode_catalog(&self.catalog);
            self.wal.truncate_with(
                &snapshot,
                &[
                    Record::Begin,
                    Record::Catalog {
                        clock,
                        catalog: catalog_text,
                    },
                    Record::Commit,
                ],
            )?;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdbms_kernel::{
        AttrDef, DatabaseClass, Domain, RowCodec, Schema, TemporalKind,
        Value,
    };
    use tdbms_storage::{AccessMethod, DiskManager, HashFn, SharedMemDisk};

    fn schema() -> Schema {
        Schema::new(
            vec![
                AttrDef::new("id", Domain::I4),
                AttrDef::new("pad", Domain::Char(104)),
            ],
            DatabaseClass::Static,
            TemporalKind::Interval,
        )
        .unwrap()
    }

    /// A shared-disk pager + catalog with one relation of `n` rows in the
    /// given organization, plus a handle for corrupting pages behind the
    /// pager's back.
    fn fixture(
        method: AccessMethod,
        n: i64,
    ) -> (SharedMemDisk, Pager, Catalog, RelId) {
        let shared = SharedMemDisk::new();
        let pager = Pager::new(Box::new(shared.clone()));
        let mut cat = Catalog::new();
        let id = cat.create_relation(&pager, "r", schema()).unwrap();
        {
            let rel = cat.get_mut(id);
            for i in 1..=n {
                let row = rel
                    .codec
                    .encode(&[Value::Int(i), Value::Str("x".into())])
                    .unwrap();
                rel.insert_row(&pager, &row).unwrap();
            }
            if method != AccessMethod::Heap {
                rel.modify(&pager, method, Some(0), 100, HashFn::Mod)
                    .unwrap();
            }
        }
        pager.flush_all().unwrap();
        (shared, pager, cat, id)
    }

    /// Record the current on-disk sums for every page of every file.
    fn adopt_sums(pager: &Pager) {
        let mut sums = ChecksumSet::new();
        for (f, n) in pager.file_lengths().unwrap() {
            for p in 0..n {
                let page = pager.read_page_raw(f, p).unwrap();
                sums.record(f, p, &page);
            }
        }
        pager.set_checksums(Some(sums));
    }

    fn empty_plan() -> RecoveryPlan {
        RecoveryPlan::parse(&[])
    }

    /// Encode a row for a temporal schema: explicit values padded with
    /// placeholder times for the implicit attributes (set afterwards via
    /// `put_time`).
    fn full_row(codec: &RowCodec, explicit: &[Value]) -> Vec<u8> {
        let mut vals = explicit.to_vec();
        vals.resize(codec.arity(), Value::Time(TimeVal::BEGINNING));
        codec.encode(&vals).unwrap()
    }

    #[test]
    fn clean_databases_report_clean_in_every_organization() {
        for method in
            [AccessMethod::Heap, AccessMethod::Hash, AccessMethod::Isam]
        {
            let (_shared, pager, cat, _) = fixture(method, 40);
            adopt_sums(&pager);
            let report = check_database(&pager, &cat).unwrap();
            assert!(report.is_clean(), "{method:?}:\n{}", report.render());
            assert!(report.findings.is_empty(), "{method:?}");
            assert_eq!(report.relations_checked, 1);
            assert!(report.pages_checked > 0);
            assert!(report.render().ends_with("clean\n"));
            // The scrub traffic is attributed to its named phase.
            let phases = pager.stats().phases();
            assert!(
                phases.iter().any(|p| p.name == "scrub" && p.reads > 0),
                "scrub phase missing from {:?}",
                phases
            );
        }
    }

    #[test]
    fn bit_rot_is_detected_and_quarantined_without_a_log_image() {
        let (shared, pager, mut cat, id) = fixture(AccessMethod::Hash, 40);
        adopt_sums(&pager);
        let file = cat.get(id).file.file_id();
        // Flip one byte of page 2 behind the pager's back.
        let mut page = shared.clone().read_page(file, 2).unwrap();
        let mut bytes = Box::new(*page.as_bytes());
        bytes[500] ^= 0x20;
        page = Page::from_bytes(bytes);
        shared.clone().write_page(file, 2, &page).unwrap();

        let report = check_database(&pager, &cat).unwrap();
        assert!(!report.is_clean());
        assert!(report
            .findings
            .iter()
            .any(|f| f.detail.contains("checksum mismatch")
                && f.page == Some(2)));

        let before = cat.get(id).tuple_count;
        let rep = repair_database(&pager, &mut cat, &empty_plan()).unwrap();
        assert!(rep
            .findings
            .iter()
            .any(|f| f.severity == Severity::Lost && f.page == Some(2)));
        let lost = before - cat.get(id).tuple_count;
        assert!(lost > 0, "quarantine must report the loss in the count");

        // The repaired database is clean, and the surviving rows scan.
        let after = check_database(&pager, &cat).unwrap();
        assert!(after.is_clean(), "{}", after.render());
        let rel = cat.get(id);
        let mut seen = 0u64;
        let mut cur = rel.file.scan();
        while cur.next(&pager, &rel.file).unwrap().is_some() {
            seen += 1;
        }
        assert_eq!(seen, rel.tuple_count);
        assert_eq!(seen, before - lost);
    }

    #[test]
    fn bit_rot_is_restored_exactly_from_a_log_image() {
        let (shared, pager, mut cat, id) = fixture(AccessMethod::Isam, 40);
        adopt_sums(&pager);
        let file = cat.get(id).file.file_id();
        let pristine = shared.clone().read_page(file, 1).unwrap();
        let mut plan = empty_plan();
        plan.txns.push(vec![(
            7,
            Record::PageImage {
                file,
                page_no: 1,
                image: pristine.clone(),
            },
        )]);

        let mut bytes = Box::new(*pristine.as_bytes());
        bytes[100] ^= 0x01;
        shared
            .clone()
            .write_page(file, 1, &Page::from_bytes(bytes))
            .unwrap();

        let before = cat.get(id).tuple_count;
        let rep = repair_database(&pager, &mut cat, &plan).unwrap();
        assert!(
            rep.findings
                .iter()
                .any(|f| f.severity == Severity::Repaired
                    && f.page == Some(1))
        );
        assert!(!rep.findings.iter().any(|f| f.severity == Severity::Lost));
        assert_eq!(cat.get(id).tuple_count, before, "nothing lost");
        let restored = shared.clone().read_page(file, 1).unwrap();
        assert_eq!(
            restored.as_bytes().as_slice(),
            pristine.as_bytes().as_slice(),
            "byte-exact restoration"
        );
        let after = check_database(&pager, &cat).unwrap();
        assert!(after.is_clean(), "{}", after.render());
    }

    #[test]
    fn cycles_are_clipped_and_orphans_discarded_with_a_loss_report() {
        // All rows share one key, forcing a long chain behind bucket 0.
        let shared = SharedMemDisk::new();
        let pager = Pager::new(Box::new(shared.clone()));
        let mut cat = Catalog::new();
        let id = cat.create_relation(&pager, "r", schema()).unwrap();
        {
            let rel = cat.get_mut(id);
            for _ in 0..30 {
                let row = rel
                    .codec
                    .encode(&[Value::Int(7), Value::Str("x".into())])
                    .unwrap();
                rel.insert_row(&pager, &row).unwrap();
            }
            rel.modify(
                &pager,
                AccessMethod::Hash,
                Some(0),
                100,
                HashFn::Mod,
            )
            .unwrap();
        }
        pager.flush_all().unwrap();
        let file = cat.get(id).file.file_id();
        let nbuckets = match &cat.get(id).file {
            RelFile::Hash(h) => h.nbuckets,
            other => panic!("expected a hash file, got {other:?}"),
        };
        let n = pager.page_count(file).unwrap();
        assert!(
            n >= nbuckets + 2,
            "need a chain to corrupt, got {n} pages over {nbuckets} buckets"
        );
        // Point the first overflow page back at itself: a cycle.
        let ov = nbuckets;
        let mut page = shared.clone().read_page(file, ov).unwrap();
        assert!(page.count() > 0, "first overflow page should carry rows");
        page.set_overflow(ov);
        shared.clone().write_page(file, ov, &page).unwrap();

        let report = check_database(&pager, &cat).unwrap();
        assert!(!report.is_clean());
        assert!(report
            .findings
            .iter()
            .any(|f| f.detail.contains("reached twice")));

        let before = cat.get(id).tuple_count;
        let rep = repair_database(&pager, &mut cat, &empty_plan()).unwrap();
        assert!(rep
            .findings
            .iter()
            .any(|f| f.detail.contains("truncated")));
        let after = check_database(&pager, &cat).unwrap();
        assert!(after.is_clean(), "{}", after.render());
        // A scan terminates now and matches the corrected count.
        let rel = cat.get(id);
        let mut seen = 0u64;
        let mut cur = rel.file.scan();
        while cur.next(&pager, &rel.file).unwrap().is_some() {
            seen += 1;
        }
        assert_eq!(seen, rel.tuple_count);
        assert!(seen < before, "the truncated tail is reported as loss");
    }

    #[test]
    fn temporal_invariants_reversed_interval_is_an_error() {
        let shared = SharedMemDisk::new();
        let pager = Pager::new(Box::new(shared.clone()));
        let mut cat = Catalog::new();
        let hist = Schema::new(
            vec![AttrDef::new("id", Domain::I4)],
            DatabaseClass::Historical,
            TemporalKind::Interval,
        )
        .unwrap();
        let id = cat.create_relation(&pager, "h", hist).unwrap();
        let rel = cat.get_mut(id);
        let vf =
            rel.schema.temporal_index(TemporalAttr::ValidFrom).unwrap();
        let vt = rel.schema.temporal_index(TemporalAttr::ValidTo).unwrap();
        let codec = RowCodec::new(&rel.schema);
        let mut good = full_row(&codec, &[Value::Int(1)]);
        codec.put_time(&mut good, vf, TimeVal::from_secs(10));
        codec.put_time(&mut good, vt, TimeVal::from_secs(20));
        rel.insert_row(&pager, &good).unwrap();
        let mut bad = full_row(&codec, &[Value::Int(2)]);
        codec.put_time(&mut bad, vf, TimeVal::from_secs(30));
        codec.put_time(&mut bad, vt, TimeVal::from_secs(5));
        rel.insert_row(&pager, &bad).unwrap();

        let report = check_database(&pager, &cat).unwrap();
        assert!(!report.is_clean());
        assert!(report
            .findings
            .iter()
            .any(|f| f.detail.contains("reversed valid interval")));
    }

    #[test]
    fn overlapping_live_versions_of_one_key_warn_but_stay_clean() {
        let shared = SharedMemDisk::new();
        let pager = Pager::new(Box::new(shared.clone()));
        let mut cat = Catalog::new();
        let hist = Schema::new(
            vec![
                AttrDef::new("id", Domain::I4),
                AttrDef::new("pad", Domain::Char(100)),
            ],
            DatabaseClass::Historical,
            TemporalKind::Interval,
        )
        .unwrap();
        let id = cat.create_relation(&pager, "h", hist).unwrap();
        {
            let rel = cat.get_mut(id);
            let vf =
                rel.schema.temporal_index(TemporalAttr::ValidFrom).unwrap();
            let vt =
                rel.schema.temporal_index(TemporalAttr::ValidTo).unwrap();
            let codec = RowCodec::new(&rel.schema);
            for (a, b) in [(10u32, 100u32), (50, 200)] {
                let mut row = full_row(
                    &codec,
                    &[Value::Int(7), Value::Str("x".into())],
                );
                codec.put_time(&mut row, vf, TimeVal::from_secs(a));
                codec.put_time(&mut row, vt, TimeVal::from_secs(b));
                rel.insert_row(&pager, &row).unwrap();
            }
            rel.modify(
                &pager,
                AccessMethod::Isam,
                Some(0),
                100,
                HashFn::Mod,
            )
            .unwrap();
        }
        let report = check_database(&pager, &cat).unwrap();
        assert!(report.is_clean(), "{}", report.render());
        assert!(report
            .findings
            .iter()
            .any(|f| f.severity == Severity::Warning
                && f.detail.contains("overlapping valid intervals")
                && f.detail.contains("key 7")));
    }

    #[test]
    fn tuple_count_drift_is_an_error_and_repair_corrects_it() {
        let (_shared, pager, mut cat, id) = fixture(AccessMethod::Heap, 12);
        cat.get_mut(id).tuple_count = 99;
        let report = check_database(&pager, &cat).unwrap();
        assert!(!report.is_clean());
        assert!(report
            .findings
            .iter()
            .any(|f| f.detail.contains("99 stored rows but 12")));
        repair_database(&pager, &mut cat, &empty_plan()).unwrap();
        assert_eq!(cat.get(id).tuple_count, 12);
        assert!(check_database(&pager, &cat).unwrap().is_clean());
    }

    #[test]
    fn history_sidecars_are_audited_and_their_counts_repaired() {
        use tdbms_storage::ClusteredHistory;
        let (shared, pager, mut cat, id) = fixture(AccessMethod::Hash, 8);
        // Hang a clustered history off the relation: 3 keys × enough
        // versions to span several pages.
        {
            let rel = cat.get_mut(id);
            let mut h = ClusteredHistory::create(
                &pager,
                rel.schema.row_width(),
                KeySpec::for_attr(&rel.codec, 0),
            )
            .unwrap();
            for k in 1..=3i64 {
                for v in 0..40u32 {
                    let row = rel
                        .codec
                        .encode(&[Value::Int(k), Value::Str("x".into())])
                        .unwrap();
                    let _ = v;
                    h.push(&pager, &row, TimeVal::from_secs(100)).unwrap();
                }
            }
            rel.history = Some(std::sync::Arc::new(h));
        }
        pager.flush_all().unwrap();
        adopt_sums(&pager);

        let report = check_database(&pager, &cat).unwrap();
        assert!(report.is_clean(), "{}", report.render());
        // The sidecar counts as a unit of its own, not an orphan file.
        assert!(!report
            .findings
            .iter()
            .any(|f| f.detail.contains("not referenced")));

        // Rot one history page: the check names the sidecar unit, and
        // repair quarantines the page and corrects the migrated count.
        let hfile = cat.get(id).history.as_ref().unwrap().file_id();
        let before = cat.get(id).history.as_ref().unwrap().rows();
        let mut page = shared.clone().read_page(hfile, 1).unwrap();
        let mut bytes = Box::new(*page.as_bytes());
        bytes[300] ^= 0xff;
        page = Page::from_bytes(bytes);
        shared.clone().write_page(hfile, 1, &page).unwrap();

        let report = check_database(&pager, &cat).unwrap();
        assert!(!report.is_clean());
        assert!(report
            .findings
            .iter()
            .any(|f| f.relation.as_deref() == Some("r.history")));

        let rep = repair_database(&pager, &mut cat, &empty_plan()).unwrap();
        assert!(rep.findings.iter().any(|f| f.severity == Severity::Lost
            && f.detail.contains("migrated-row count corrected")));
        let after_rows = cat.get(id).history.as_ref().unwrap().rows();
        assert!(after_rows < before);

        let again = check_database(&pager, &cat).unwrap();
        assert!(again.is_clean(), "{}", again.render());
    }

    #[test]
    fn findings_render_with_stable_locations() {
        let f = Finding {
            severity: Severity::Error,
            relation: Some("emp".into()),
            file: Some(3),
            page: Some(17),
            detail: "page checksum mismatch".into(),
        };
        assert_eq!(
            f.to_string(),
            "error relation emp file 3 page 17: page checksum mismatch"
        );
    }
}
