//! Recursive-descent parser for TQuel.
//!
//! One token of lookahead everywhere except the temporal-predicate /
//! temporal-expression ambiguity at `(`, which is resolved by bounded
//! backtracking (try the comparison form first, fall back to a
//! parenthesized predicate).

use crate::ast::*;
use crate::token::{lex, Keyword as K, Token, TokenKind as T};
use tdbms_kernel::{DatabaseClass, Domain, Error, Result, TemporalKind};

/// Parse a whole TQuel program (one or more statements, optionally
/// separated by `;`).
pub fn parse_program(src: &str) -> Result<Vec<Statement>> {
    let mut p = Parser {
        toks: lex(src)?,
        pos: 0,
        paren_depth: 0,
        depth: 0,
    };
    let mut out = Vec::new();
    loop {
        while p.eat(&T::Semi) {}
        if p.at_eof() {
            break;
        }
        out.push(p.statement()?);
    }
    Ok(out)
}

/// Parse exactly one TQuel statement.
pub fn parse_statement(src: &str) -> Result<Statement> {
    let stmts = parse_program(src)?;
    match <[Statement; 1]>::try_from(stmts) {
        Ok([s]) => Ok(s),
        Err(v) => Err(Error::Semantic(format!(
            "expected exactly one statement, found {}",
            v.len()
        ))),
    }
}

/// The `(valid, where, when, as-of)` clause bundle of a DML statement.
type Clauses = (
    Option<ValidClause>,
    Option<Expr>,
    Option<TemporalPred>,
    Option<AsOf>,
);

/// Hard cap on expression nesting. The parser is recursive-descent, so
/// without a bound a statement like `(((((…)))))` or a long `not not …`
/// chain overflows the thread stack and kills the whole process — which a
/// remote client must never be able to do. Each nesting level costs a
/// handful of parser frames, so 128 keeps worst-case stack usage well
/// under a megabyte while being far deeper than any real query.
const MAX_EXPR_DEPTH: u32 = 128;

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    /// Parenthesis nesting inside a temporal expression (see
    /// [`Parser::overlap_is_predicate`]).
    paren_depth: u32,
    /// Current expression recursion depth, bounded by
    /// [`MAX_EXPR_DEPTH`].
    depth: u32,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos]
    }

    fn peek2(&self) -> &Token {
        // Safe: lexer always appends Eof.
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)]
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == T::Eof
    }

    fn advance(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &T) -> bool {
        if &self.peek().kind == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, k: K) -> bool {
        self.eat(&T::Keyword(k))
    }

    /// Enter one level of expression recursion; fails (without changing
    /// `depth`) once the nesting cap is reached, so every successful call
    /// is balanced by exactly one decrement in its caller.
    fn enter(&mut self) -> Result<()> {
        if self.depth >= MAX_EXPR_DEPTH {
            return Err(self.err(format!(
                "expression nesting too deep (limit {MAX_EXPR_DEPTH})"
            )));
        }
        self.depth += 1;
        Ok(())
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        let t = self.peek();
        Error::Parse {
            line: t.line,
            col: t.col,
            msg: msg.into(),
        }
    }

    fn expect(&mut self, kind: &T) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{kind}`, found `{}`",
                self.peek().kind
            )))
        }
    }

    fn expect_kw(&mut self, k: K) -> Result<()> {
        self.expect(&T::Keyword(k))
    }

    fn ident(&mut self) -> Result<String> {
        match &self.peek().kind {
            T::Ident(s) => {
                let s = s.clone();
                self.advance();
                Ok(s)
            }
            other => {
                Err(self
                    .err(format!("expected identifier, found `{other}`")))
            }
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        match &self.peek().kind {
            T::Keyword(K::Range) => self.range_stmt(),
            T::Keyword(K::Retrieve) => self.retrieve_stmt(),
            T::Keyword(K::Append) => self.append_stmt(),
            T::Keyword(K::Delete) => self.delete_stmt(),
            T::Keyword(K::Replace) => self.replace_stmt(),
            T::Keyword(K::Create) => self.create_stmt(),
            T::Keyword(K::Destroy) => {
                self.advance();
                Ok(Statement::Destroy(self.ident()?))
            }
            T::Keyword(K::Modify) => self.modify_stmt(),
            T::Keyword(K::Copy) => self.copy_stmt(),
            T::Keyword(K::Index) => self.index_stmt(),
            T::Keyword(K::Explain) => {
                self.advance();
                match self.retrieve_stmt()? {
                    Statement::Retrieve(r) => Ok(Statement::Explain(r)),
                    _ => unreachable!("retrieve_stmt yields Retrieve"),
                }
            }
            other => {
                Err(self
                    .err(format!("expected a statement, found `{other}`")))
            }
        }
    }

    fn range_stmt(&mut self) -> Result<Statement> {
        self.expect_kw(K::Range)?;
        self.expect_kw(K::Of)?;
        let var = self.ident()?;
        self.expect_kw(K::Is)?;
        let rel = self.ident()?;
        Ok(Statement::Range { var, rel })
    }

    /// The optional clauses shared by retrieve/append/delete/replace, in
    /// any order, each at most once.
    fn clauses(&mut self) -> Result<Clauses> {
        let mut valid = None;
        let mut where_clause = None;
        let mut when_clause = None;
        let mut as_of = None;
        loop {
            match &self.peek().kind {
                T::Keyword(K::Valid) if valid.is_none() => {
                    self.advance();
                    valid = Some(self.valid_clause()?);
                }
                T::Keyword(K::Where) if where_clause.is_none() => {
                    self.advance();
                    where_clause = Some(self.expr()?);
                }
                T::Keyword(K::When) if when_clause.is_none() => {
                    self.advance();
                    when_clause = Some(self.temporal_pred()?);
                }
                T::Keyword(K::As) if as_of.is_none() => {
                    self.advance();
                    self.expect_kw(K::Of)?;
                    let at = self.temporal_expr()?;
                    let through = if self.eat_kw(K::Through) {
                        Some(self.temporal_expr()?)
                    } else {
                        None
                    };
                    as_of = Some(AsOf { at, through });
                }
                T::Keyword(K::Valid | K::Where | K::When | K::As) => {
                    return Err(self.err("duplicate clause"))
                }
                _ => break,
            }
        }
        Ok((valid, where_clause, when_clause, as_of))
    }

    fn valid_clause(&mut self) -> Result<ValidClause> {
        if self.eat_kw(K::At) {
            Ok(ValidClause::At(self.temporal_expr()?))
        } else {
            self.expect_kw(K::From)?;
            let from = self.temporal_expr()?;
            self.expect_kw(K::To)?;
            let to = self.temporal_expr()?;
            Ok(ValidClause::Interval { from, to })
        }
    }

    fn retrieve_stmt(&mut self) -> Result<Statement> {
        self.expect_kw(K::Retrieve)?;
        let into = if self.eat_kw(K::Into) {
            Some(self.ident()?)
        } else {
            None
        };
        self.expect(&T::LParen)?;
        let mut targets = Vec::new();
        loop {
            targets.push(self.target()?);
            if !self.eat(&T::Comma) {
                break;
            }
        }
        self.expect(&T::RParen)?;
        let (valid, where_clause, when_clause, as_of) = self.clauses()?;
        let mut sort = Vec::new();
        if self.eat_kw(K::Sort) {
            self.expect_kw(K::By)?;
            loop {
                let column = self.ident()?;
                let descending = if self.eat_kw(K::Desc) {
                    true
                } else {
                    let _ = self.eat_kw(K::Asc);
                    false
                };
                sort.push(SortKey { column, descending });
                if !self.eat(&T::Comma) {
                    break;
                }
            }
        }
        Ok(Statement::Retrieve(Retrieve {
            into,
            targets,
            valid,
            where_clause,
            when_clause,
            as_of,
            sort,
        }))
    }

    fn target(&mut self) -> Result<Target> {
        // `name = expr` vs a bare expression: an identifier followed by `=`
        // is a result name.
        if let (T::Ident(name), T::Eq) =
            (&self.peek().kind, &self.peek2().kind)
        {
            let name = name.clone();
            self.advance();
            self.advance();
            return Ok(Target {
                name: Some(name),
                expr: self.expr()?,
            });
        }
        Ok(Target {
            name: None,
            expr: self.expr()?,
        })
    }

    fn assignments(&mut self) -> Result<Vec<Assignment>> {
        self.expect(&T::LParen)?;
        let mut out = Vec::new();
        loop {
            let attr = self.ident()?;
            self.expect(&T::Eq)?;
            let expr = self.expr()?;
            out.push(Assignment { attr, expr });
            if !self.eat(&T::Comma) {
                break;
            }
        }
        self.expect(&T::RParen)?;
        Ok(out)
    }

    fn append_stmt(&mut self) -> Result<Statement> {
        self.expect_kw(K::Append)?;
        let _ = self.eat_kw(K::To);
        let rel = self.ident()?;
        let assignments = self.assignments()?;
        let (valid, where_clause, when_clause, as_of) = self.clauses()?;
        if as_of.is_some() {
            return Err(self.err("`as of` is not allowed on append"));
        }
        Ok(Statement::Append(Append {
            rel,
            assignments,
            valid,
            where_clause,
            when_clause,
        }))
    }

    fn delete_stmt(&mut self) -> Result<Statement> {
        self.expect_kw(K::Delete)?;
        let var = self.ident()?;
        let (valid, where_clause, when_clause, as_of) = self.clauses()?;
        if as_of.is_some() {
            return Err(self.err("`as of` is not allowed on delete"));
        }
        Ok(Statement::Delete(Delete {
            var,
            where_clause,
            when_clause,
            valid,
        }))
    }

    fn replace_stmt(&mut self) -> Result<Statement> {
        self.expect_kw(K::Replace)?;
        let var = self.ident()?;
        let assignments = self.assignments()?;
        let (valid, where_clause, when_clause, as_of) = self.clauses()?;
        if as_of.is_some() {
            return Err(self.err("`as of` is not allowed on replace"));
        }
        Ok(Statement::Replace(Replace {
            var,
            assignments,
            valid,
            where_clause,
            when_clause,
        }))
    }

    fn create_stmt(&mut self) -> Result<Statement> {
        self.expect_kw(K::Create)?;
        let class = match &self.peek().kind {
            T::Keyword(K::Static) => {
                self.advance();
                DatabaseClass::Static
            }
            T::Keyword(K::Rollback) => {
                self.advance();
                DatabaseClass::Rollback
            }
            T::Keyword(K::Historical) => {
                self.advance();
                DatabaseClass::Historical
            }
            // The paper's Figure 3 writes `create persistent interval ...`
            // for its temporal relations.
            T::Keyword(K::Temporal | K::Persistent) => {
                self.advance();
                DatabaseClass::Temporal
            }
            _ => DatabaseClass::Static,
        };
        let kind = match &self.peek().kind {
            T::Keyword(K::Interval) => {
                self.advance();
                TemporalKind::Interval
            }
            T::Keyword(K::Event) => {
                self.advance();
                TemporalKind::Event
            }
            _ => TemporalKind::Interval,
        };
        let rel = self.ident()?;
        self.expect(&T::LParen)?;
        let mut attrs = Vec::new();
        loop {
            let name = self.ident()?;
            self.expect(&T::Eq)?;
            let ty = self.ident()?;
            attrs.push((name, Domain::parse(&ty)?));
            if !self.eat(&T::Comma) {
                break;
            }
        }
        self.expect(&T::RParen)?;
        Ok(Statement::Create(Create {
            rel,
            class,
            kind,
            attrs,
        }))
    }

    fn modify_stmt(&mut self) -> Result<Statement> {
        self.expect_kw(K::Modify)?;
        let rel = self.ident()?;
        self.expect_kw(K::To)?;
        let organization = match &self.peek().kind {
            T::Keyword(K::Heap) => {
                self.advance();
                "heap".to_string()
            }
            T::Keyword(K::Hash) => {
                self.advance();
                "hash".to_string()
            }
            T::Keyword(K::Isam) => {
                self.advance();
                "isam".to_string()
            }
            _ => self.ident()?,
        };
        let key = if self.eat_kw(K::On) {
            Some(self.ident()?)
        } else {
            None
        };
        let fillfactor = if self.eat_kw(K::Where) {
            self.expect_kw(K::Fillfactor)?;
            self.expect(&T::Eq)?;
            match self.advance().kind {
                T::Int(n) if (1..=100).contains(&n) => Some(n as u8),
                other => {
                    return Err(self.err(format!(
                        "fillfactor must be 1..=100, found `{other}`"
                    )))
                }
            }
        } else {
            None
        };
        Ok(Statement::Modify(Modify {
            rel,
            organization,
            key,
            fillfactor,
        }))
    }

    fn index_stmt(&mut self) -> Result<Statement> {
        self.expect_kw(K::Index)?;
        self.expect_kw(K::On)?;
        let rel = self.ident()?;
        self.expect_kw(K::Is)?;
        let name = self.ident()?;
        self.expect(&T::LParen)?;
        let attr = self.ident()?;
        self.expect(&T::RParen)?;
        let structure = if self.eat_kw(K::To) {
            Some(match &self.peek().kind {
                T::Keyword(K::Heap) => {
                    self.advance();
                    "heap".to_string()
                }
                T::Keyword(K::Hash) => {
                    self.advance();
                    "hash".to_string()
                }
                other => {
                    return Err(self.err(format!(
                    "index structure must be heap or hash, found `{other}`"
                )))
                }
            })
        } else {
            None
        };
        Ok(Statement::Index(CreateIndex {
            rel,
            name,
            attr,
            structure,
        }))
    }

    fn copy_stmt(&mut self) -> Result<Statement> {
        self.expect_kw(K::Copy)?;
        let rel = self.ident()?;
        // Optional (and ignored) attribute-format list, Quel style.
        if self.eat(&T::LParen) {
            while !self.eat(&T::RParen) {
                if self.at_eof() {
                    return Err(self.err("unterminated copy format list"));
                }
                self.advance();
            }
        }
        let from = if self.eat_kw(K::From) {
            true
        } else if self.eat_kw(K::Into) {
            false
        } else {
            return Err(self.err("expected `from` or `into` in copy"));
        };
        let file = match self.advance().kind {
            T::Str(s) => s,
            other => {
                return Err(self
                    .err(format!("expected file string, found `{other}`")))
            }
        };
        Ok(Statement::Copy(Copy { rel, from, file }))
    }

    // ---- scalar expressions -------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.enter()?;
        let r = self.or_expr();
        self.depth -= 1;
        r
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw(K::Or) {
            let rhs = self.and_expr()?;
            lhs = Expr::Bin {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw(K::And) {
            let rhs = self.not_expr()?;
            lhs = Expr::Bin {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw(K::Not) {
            self.enter()?;
            let r = self.not_expr().map(|e| Expr::Not(Box::new(e)));
            self.depth -= 1;
            r
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let op = match &self.peek().kind {
            T::Eq => BinOp::Eq,
            T::Ne => BinOp::Ne,
            T::Lt => BinOp::Lt,
            T::Le => BinOp::Le,
            T::Gt => BinOp::Gt,
            T::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.advance();
        let rhs = self.add_expr()?;
        Ok(Expr::Bin {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match &self.peek().kind {
                T::Plus => BinOp::Add,
                T::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match &self.peek().kind {
                T::Star => BinOp::Mul,
                T::Slash => BinOp::Div,
                T::Keyword(K::Mod) => BinOp::Mod,
                _ => break,
            };
            self.advance();
            let rhs = self.unary_expr()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat(&T::Minus) {
            self.enter()?;
            let r = self.unary_expr().map(|e| Expr::Neg(Box::new(e)));
            self.depth -= 1;
            r
        } else {
            self.primary_expr()
        }
    }

    fn primary_expr(&mut self) -> Result<Expr> {
        match self.peek().kind.clone() {
            T::Int(v) => {
                self.advance();
                Ok(Expr::Int(v))
            }
            T::Float(v) => {
                self.advance();
                Ok(Expr::Float(v))
            }
            T::Str(s) => {
                self.advance();
                Ok(Expr::Str(s))
            }
            T::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect(&T::RParen)?;
                Ok(e)
            }
            T::Ident(var) => {
                self.advance();
                // `ident(` is an aggregate call; `ident.attr` a reference.
                if self.peek().kind == T::LParen {
                    let Some(func) = crate::ast::AggFunc::from_name(&var)
                    else {
                        return Err(self.err(format!(
                            "unknown aggregate function {var:?} (expected                              count, sum, avg, min, or max)"
                        )));
                    };
                    self.advance();
                    let arg = self.expr()?;
                    self.expect(&T::RParen)?;
                    return Ok(Expr::Agg {
                        func,
                        arg: Box::new(arg),
                    });
                }
                self.expect(&T::Dot).map_err(|_| {
                    self.err(format!(
                        "attribute references must be qualified: `{var}.<attr>`"
                    ))
                })?;
                // Implicit time attributes may appear in target lists.
                let attr = match &self.peek().kind {
                    T::Ident(a) => {
                        let a = a.clone();
                        self.advance();
                        a
                    }
                    other => {
                        return Err(self.err(format!(
                            "expected attribute name, found `{other}`"
                        )))
                    }
                };
                Ok(Expr::Attr { var, attr })
            }
            other => {
                Err(self
                    .err(format!("expected expression, found `{other}`")))
            }
        }
    }

    // ---- temporal expressions and predicates --------------------------

    fn temporal_pred(&mut self) -> Result<TemporalPred> {
        self.tpred_or()
    }

    fn tpred_or(&mut self) -> Result<TemporalPred> {
        let mut lhs = self.tpred_and()?;
        while self.eat_kw(K::Or) {
            let rhs = self.tpred_and()?;
            lhs = TemporalPred::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn tpred_and(&mut self) -> Result<TemporalPred> {
        let mut lhs = self.tpred_not()?;
        while self.eat_kw(K::And) {
            let rhs = self.tpred_not()?;
            lhs = TemporalPred::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn tpred_not(&mut self) -> Result<TemporalPred> {
        if self.eat_kw(K::Not) {
            self.enter()?;
            let r =
                self.tpred_not().map(|p| TemporalPred::Not(Box::new(p)));
            self.depth -= 1;
            return r;
        }
        // `(` is ambiguous: `(a overlap b) precede c` is a comparison whose
        // left operand is parenthesized, `(a precede b)` is a parenthesized
        // predicate. Try the comparison form, backtrack on failure —
        // restoring the paren/recursion depths too, or a failed attempt
        // deep inside parentheses would poison the overlap disambiguation
        // (and, for `depth`, the nesting budget).
        let save = self.pos;
        let save_depth = self.paren_depth;
        let save_expr_depth = self.depth;
        match self.tpred_cmp() {
            Ok(p) => Ok(p),
            Err(first_err) => {
                self.pos = save;
                self.paren_depth = save_depth;
                self.depth = save_expr_depth;
                self.enter()?;
                let r = if self.eat(&T::LParen) {
                    let p = self.temporal_pred()?;
                    self.expect(&T::RParen)?;
                    Ok(p)
                } else {
                    Err(first_err)
                };
                self.depth -= 1;
                r
            }
        }
    }

    fn tpred_cmp(&mut self) -> Result<TemporalPred> {
        let lhs = self.temporal_expr()?;
        match &self.peek().kind {
            T::Keyword(K::Precede) => {
                self.advance();
                Ok(TemporalPred::Precede(lhs, self.temporal_expr()?))
            }
            T::Keyword(K::Overlap) => {
                self.advance();
                Ok(TemporalPred::Overlap(lhs, self.temporal_expr()?))
            }
            T::Keyword(K::Equal) => {
                self.advance();
                Ok(TemporalPred::Equal(lhs, self.temporal_expr()?))
            }
            other => Err(self.err(format!(
                "expected `precede`, `overlap`, or `equal`, found `{other}`"
            ))),
        }
    }

    fn temporal_expr(&mut self) -> Result<TemporalExpr> {
        self.texpr_extend()
    }

    fn texpr_extend(&mut self) -> Result<TemporalExpr> {
        let mut lhs = self.texpr_overlap()?;
        while self.eat_kw(K::Extend) {
            let rhs = self.texpr_overlap()?;
            lhs = TemporalExpr::Extend(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn texpr_overlap(&mut self) -> Result<TemporalExpr> {
        let mut lhs = self.texpr_unary()?;
        // `overlap` is both an interval constructor (here) and a predicate
        // (in `when`). Inside a temporal expression it is the constructor
        // unless it is the predicate of the enclosing comparison — the
        // comparison parser consumes it first only at the top level, so a
        // constructor use must be parenthesized there, exactly as the
        // paper writes `start of (h overlap i)`.
        while self.peek().kind == T::Keyword(K::Overlap)
            && !self.overlap_is_predicate()
        {
            self.advance();
            let rhs = self.texpr_unary()?;
            lhs = TemporalExpr::Overlap(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// Heuristic disambiguation of `a overlap b`: when parsing inside a
    /// `when` comparison, a top-level `overlap` is the predicate. We treat
    /// `overlap` as a constructor only inside parentheses, which is where
    /// TQuel programs (and the paper) put constructor uses.
    fn overlap_is_predicate(&self) -> bool {
        self.paren_depth == 0
    }

    fn texpr_unary(&mut self) -> Result<TemporalExpr> {
        match self.peek().kind.clone() {
            T::Keyword(K::Start) => {
                self.advance();
                self.expect_kw(K::Of)?;
                self.enter()?;
                let r = self
                    .texpr_unary()
                    .map(|e| TemporalExpr::Start(Box::new(e)));
                self.depth -= 1;
                r
            }
            T::Keyword(K::End) => {
                self.advance();
                self.expect_kw(K::Of)?;
                self.enter()?;
                let r = self
                    .texpr_unary()
                    .map(|e| TemporalExpr::End(Box::new(e)));
                self.depth -= 1;
                r
            }
            T::Ident(v) => {
                self.advance();
                Ok(TemporalExpr::Var(v))
            }
            T::Str(s) => {
                self.advance();
                Ok(TemporalExpr::Lit(s))
            }
            T::LParen => {
                self.advance();
                self.enter()?;
                self.paren_depth += 1;
                let e = self.temporal_expr();
                self.paren_depth -= 1;
                self.depth -= 1;
                let e = e?;
                self.expect(&T::RParen)?;
                Ok(e)
            }
            other => Err(self.err(format!(
                "expected temporal expression, found `{other}`"
            ))),
        }
    }
}
