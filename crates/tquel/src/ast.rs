//! The abstract syntax of TQuel.
//!
//! TQuel extends each Quel statement: `retrieve` gains the `valid`, `when`,
//! and `as of` clauses; `append`/`delete`/`replace` gain `valid` and
//! `when`; `create` gains the relation class (static / rollback /
//! historical / temporal) and kind (interval / event).

use tdbms_kernel::{DatabaseClass, Domain, TemporalKind};

/// One parsed TQuel statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `range of <var> is <relation>` — bind a tuple variable.
    Range {
        /// The tuple variable.
        var: String,
        /// The relation it ranges over.
        rel: String,
    },
    /// `retrieve [into r] (targets) [valid ...] [where ...] [when ...]
    /// [as of ...]`
    Retrieve(Retrieve),
    /// `append [to] r (assignments) [valid ...] [where ...] [when ...]`
    Append(Append),
    /// `delete v [where ...] [when ...]`
    Delete(Delete),
    /// `replace v (assignments) [valid ...] [where ...] [when ...]`
    Replace(Replace),
    /// `create <class> [<kind>] r (name = type, ...)`
    Create(Create),
    /// `destroy r`
    Destroy(String),
    /// `modify r to <organization> [on attr] [where fillfactor = N]`
    Modify(Modify),
    /// `copy r (...) from/into "file"` — batch input/output.
    Copy(Copy),
    /// `index on r is name (attr) [to heap|hash]` — create a secondary
    /// index (Ingres-style; the paper's §6 proposes exactly this for
    /// non-key temporal queries).
    Index(CreateIndex),
    /// `explain retrieve ...` — plan the retrieve, run it, and report
    /// the chosen detachment order, access paths, and estimated vs
    /// actual page I/O instead of the result rows.
    Explain(Retrieve),
}

/// The index statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateIndex {
    /// Relation being indexed.
    pub rel: String,
    /// The index's name.
    pub name: String,
    /// The indexed attribute.
    pub attr: String,
    /// `heap` or `hash` (default hash — the winner in the paper's
    /// Figure 10).
    pub structure: Option<String>,
}

/// The retrieve statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Retrieve {
    /// Materialize into this named relation instead of returning rows.
    pub into: Option<String>,
    /// The target list.
    pub targets: Vec<Target>,
    /// The `valid` clause (historical/temporal only).
    pub valid: Option<ValidClause>,
    /// The `where` qualification.
    pub where_clause: Option<Expr>,
    /// The `when` temporal predicate (historical/temporal only).
    pub when_clause: Option<TemporalPred>,
    /// The `as of` rollback clause (rollback/temporal only).
    pub as_of: Option<AsOf>,
    /// `sort by col [asc|desc], ...` over result column names.
    pub sort: Vec<SortKey>,
}

/// One `sort by` key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortKey {
    /// The result column name.
    pub column: String,
    /// Descending order?
    pub descending: bool,
}

/// One entry of a target list: `expr` or `name = expr`.
#[derive(Debug, Clone, PartialEq)]
pub struct Target {
    /// Result attribute name; defaults to the attribute name when the
    /// expression is a plain `var.attr`.
    pub name: Option<String>,
    /// The value expression.
    pub expr: Expr,
}

/// The append statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Append {
    /// Relation appended to.
    pub rel: String,
    /// Attribute assignments.
    pub assignments: Vec<Assignment>,
    /// The `valid` clause: when the new fact holds.
    pub valid: Option<ValidClause>,
    /// Qualification over range variables (for computed appends).
    pub where_clause: Option<Expr>,
    /// Temporal qualification.
    pub when_clause: Option<TemporalPred>,
}

/// The delete statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    /// The tuple variable naming what to delete.
    pub var: String,
    /// Qualification.
    pub where_clause: Option<Expr>,
    /// Temporal qualification.
    pub when_clause: Option<TemporalPred>,
    /// The `valid` clause: when the deletion takes effect in valid time
    /// (defaults to "now").
    pub valid: Option<ValidClause>,
}

/// The replace statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Replace {
    /// The tuple variable naming what to replace.
    pub var: String,
    /// Attribute assignments (unassigned attributes keep their values).
    pub assignments: Vec<Assignment>,
    /// The `valid` clause for the replacement fact.
    pub valid: Option<ValidClause>,
    /// Qualification.
    pub where_clause: Option<Expr>,
    /// Temporal qualification.
    pub when_clause: Option<TemporalPred>,
}

/// `attr = expr` in an append/replace.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Attribute being assigned.
    pub attr: String,
    /// The value expression.
    pub expr: Expr,
}

/// The extended create statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Create {
    /// Relation name.
    pub rel: String,
    /// Database class (the paper's `persistent` keyword maps to temporal).
    pub class: DatabaseClass,
    /// Interval or event (meaningful for historical/temporal).
    pub kind: TemporalKind,
    /// Declared attributes.
    pub attrs: Vec<(String, Domain)>,
}

/// The modify statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Modify {
    /// Relation to reorganize.
    pub rel: String,
    /// Target organization: `heap`, `hash`, or `isam`.
    pub organization: String,
    /// Key attribute (`on id`).
    pub key: Option<String>,
    /// `where fillfactor = N` (percent; defaults to 100).
    pub fillfactor: Option<u8>,
}

/// The copy statement (batch load/unload).
#[derive(Debug, Clone, PartialEq)]
pub struct Copy {
    /// Relation copied.
    pub rel: String,
    /// Direction: true = `from` (load), false = `into` (unload).
    pub from: bool,
    /// The file path.
    pub file: String,
}

/// Scalar expressions (the `where` clause and target lists).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `var.attr` — attribute of a tuple variable.
    Attr {
        /// The tuple variable.
        var: String,
        /// The attribute.
        attr: String,
    },
    /// Binary operation.
    Bin {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary negation `-e`.
    Neg(Box<Expr>),
    /// Logical `not e`.
    Not(Box<Expr>),
    /// Aggregate call `count(e)`, `sum(e)`, … — allowed only as a
    /// retrieve target; the non-aggregate targets of the same retrieve
    /// act as the grouping key (a pragmatic restriction of Quel's general
    /// aggregate scoping, documented in the binder).
    Agg {
        /// The aggregate function.
        func: AggFunc,
        /// Its argument.
        arg: Box<Expr>,
    },
}

/// The aggregate functions of Quel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Number of qualifying tuples.
    Count,
    /// Sum of a numeric expression.
    Sum,
    /// Mean of a numeric expression.
    Avg,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl AggFunc {
    /// Parse an aggregate-function name (they are ordinary identifiers
    /// until followed by `(`).
    pub fn from_name(s: &str) -> Option<AggFunc> {
        match s {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "avg" => Some(AggFunc::Avg),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            _ => None,
        }
    }

    /// The function's source name.
    pub fn as_str(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// Binary operators, loosest binding last.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `mod`
    Mod,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and`
    And,
    /// `or`
    Or,
}

impl BinOp {
    /// Operator source text.
    pub fn as_str(self) -> &'static str {
        match self {
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "mod",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        }
    }

    /// True for comparison operators (result is boolean).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
        )
    }
}

/// Temporal expressions: events and intervals built from tuple variables
/// and time constants.
///
/// A tuple variable denotes its tuple's valid interval (or valid instant
/// for event relations); a string literal denotes a time constant. The
/// constructors of TQuel's temporal algebra combine them.
#[derive(Debug, Clone, PartialEq)]
pub enum TemporalExpr {
    /// A tuple variable's valid time.
    Var(String),
    /// A time constant, still in source form (`"now"`, `"1981"`, ...);
    /// resolved against the transaction clock at execution.
    Lit(String),
    /// `start of e` — the first instant of `e`.
    Start(Box<TemporalExpr>),
    /// `end of e` — the last instant of `e`.
    End(Box<TemporalExpr>),
    /// `a overlap b` — the intersection of two intervals.
    Overlap(Box<TemporalExpr>, Box<TemporalExpr>),
    /// `a extend b` — the smallest interval covering both.
    Extend(Box<TemporalExpr>, Box<TemporalExpr>),
}

/// Temporal predicates (the `when` clause).
#[derive(Debug, Clone, PartialEq)]
pub enum TemporalPred {
    /// `a precede b` — `a` ends no later than `b` starts.
    Precede(TemporalExpr, TemporalExpr),
    /// `a overlap b` — the intervals share an instant.
    Overlap(TemporalExpr, TemporalExpr),
    /// `a equal b` — same interval.
    Equal(TemporalExpr, TemporalExpr),
    /// Conjunction.
    And(Box<TemporalPred>, Box<TemporalPred>),
    /// Disjunction.
    Or(Box<TemporalPred>, Box<TemporalPred>),
    /// Negation.
    Not(Box<TemporalPred>),
}

/// The `valid` clause: either an interval (`valid from a to b`) or an
/// event instant (`valid at a`).
#[derive(Debug, Clone, PartialEq)]
pub enum ValidClause {
    /// `valid from <event> to <event>`
    Interval {
        /// Start of validity.
        from: TemporalExpr,
        /// End of validity.
        to: TemporalExpr,
    },
    /// `valid at <event>`
    At(TemporalExpr),
}

/// The `as of` clause: roll the database back to `at`, or to the
/// transaction-time span `at through through`.
#[derive(Debug, Clone, PartialEq)]
pub struct AsOf {
    /// The rollback instant.
    pub at: TemporalExpr,
    /// Optional end of a rollback span (`as of t1 through t2`).
    pub through: Option<TemporalExpr>,
}

impl Expr {
    /// Collect the tuple variables referenced by this expression into
    /// `out` (deduplicated, in first-appearance order).
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Attr { var, .. } if !out.iter().any(|v| v == var) => {
                out.push(var.clone());
            }
            Expr::Bin { lhs, rhs, .. } => {
                lhs.collect_vars(out);
                rhs.collect_vars(out);
            }
            Expr::Neg(e) | Expr::Not(e) | Expr::Agg { arg: e, .. } => {
                e.collect_vars(out)
            }
            _ => {}
        }
    }
}

impl TemporalExpr {
    /// Collect referenced tuple variables.
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            TemporalExpr::Var(v) => {
                if !out.iter().any(|x| x == v) {
                    out.push(v.clone());
                }
            }
            TemporalExpr::Lit(_) => {}
            TemporalExpr::Start(e) | TemporalExpr::End(e) => {
                e.collect_vars(out)
            }
            TemporalExpr::Overlap(a, b) | TemporalExpr::Extend(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }
}

impl TemporalPred {
    /// Collect referenced tuple variables.
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            TemporalPred::Precede(a, b)
            | TemporalPred::Overlap(a, b)
            | TemporalPred::Equal(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            TemporalPred::And(a, b) | TemporalPred::Or(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            TemporalPred::Not(p) => p.collect_vars(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_vars_dedups_in_order() {
        let e = Expr::Bin {
            op: BinOp::And,
            lhs: Box::new(Expr::Bin {
                op: BinOp::Eq,
                lhs: Box::new(Expr::Attr {
                    var: "h".into(),
                    attr: "id".into(),
                }),
                rhs: Box::new(Expr::Attr {
                    var: "i".into(),
                    attr: "amount".into(),
                }),
            }),
            rhs: Box::new(Expr::Attr {
                var: "h".into(),
                attr: "seq".into(),
            }),
        };
        let mut vars = Vec::new();
        e.collect_vars(&mut vars);
        assert_eq!(vars, vec!["h", "i"]);
    }

    #[test]
    fn temporal_collect_vars() {
        let p = TemporalPred::Overlap(
            TemporalExpr::Start(Box::new(TemporalExpr::Var("h".into()))),
            TemporalExpr::Lit("now".into()),
        );
        let mut vars = Vec::new();
        p.collect_vars(&mut vars);
        assert_eq!(vars, vec!["h"]);
    }
}
