//! Pretty-printing of TQuel syntax trees back to source text.
//!
//! The printer is conservative with parentheses so that
//! `parse(print(ast)) == ast` holds structurally — the property tests rely
//! on it. Composite temporal expressions are always parenthesized, which
//! also keeps constructor `overlap` distinguishable from the predicate.

use crate::ast::*;
use std::fmt;

/// Render a string literal so the lexer reads back the exact value: the
/// lexer treats `\x` as an escape for any `x`, so both the backslash
/// itself and the quote must be escaped (backslash first).
pub fn quote_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Range { var, rel } => {
                write!(f, "range of {var} is {rel}")
            }
            Statement::Retrieve(r) => write!(f, "{r}"),
            Statement::Append(a) => write!(f, "{a}"),
            Statement::Delete(d) => write!(f, "{d}"),
            Statement::Replace(r) => write!(f, "{r}"),
            Statement::Create(c) => write!(f, "{c}"),
            Statement::Destroy(r) => write!(f, "destroy {r}"),
            Statement::Modify(m) => write!(f, "{m}"),
            Statement::Copy(c) => write!(f, "{c}"),
            Statement::Index(i) => write!(f, "{i}"),
            Statement::Explain(r) => write!(f, "explain {r}"),
        }
    }
}

impl fmt::Display for CreateIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "index on {} is {} ({})",
            self.rel, self.name, self.attr
        )?;
        if let Some(s) = &self.structure {
            write!(f, " to {s}")?;
        }
        Ok(())
    }
}

fn write_clauses(
    f: &mut fmt::Formatter<'_>,
    valid: &Option<ValidClause>,
    where_clause: &Option<Expr>,
    when_clause: &Option<TemporalPred>,
    as_of: &Option<AsOf>,
) -> fmt::Result {
    if let Some(v) = valid {
        write!(f, " {v}")?;
    }
    if let Some(w) = where_clause {
        write!(f, " where {w}")?;
    }
    if let Some(w) = when_clause {
        write!(f, " when {w}")?;
    }
    if let Some(a) = as_of {
        write!(f, " {a}")?;
    }
    Ok(())
}

impl fmt::Display for Retrieve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "retrieve ")?;
        if let Some(into) = &self.into {
            write!(f, "into {into} ")?;
        }
        write!(f, "(")?;
        for (i, t) in self.targets.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")?;
        write_clauses(
            f,
            &self.valid,
            &self.where_clause,
            &self.when_clause,
            &self.as_of,
        )?;
        for (i, k) in self.sort.iter().enumerate() {
            if i == 0 {
                write!(f, " sort by ")?;
            } else {
                write!(f, ", ")?;
            }
            write!(f, "{}", k.column)?;
            if k.descending {
                write!(f, " desc")?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(name) = &self.name {
            write!(f, "{name} = ")?;
        }
        write!(f, "{}", self.expr)
    }
}

impl fmt::Display for Append {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "append to {} (", self.rel)?;
        for (i, a) in self.assignments.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} = {}", a.attr, a.expr)?;
        }
        write!(f, ")")?;
        write_clauses(
            f,
            &self.valid,
            &self.where_clause,
            &self.when_clause,
            &None,
        )
    }
}

impl fmt::Display for Delete {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "delete {}", self.var)?;
        write_clauses(
            f,
            &self.valid,
            &self.where_clause,
            &self.when_clause,
            &None,
        )
    }
}

impl fmt::Display for Replace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "replace {} (", self.var)?;
        for (i, a) in self.assignments.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} = {}", a.attr, a.expr)?;
        }
        write!(f, ")")?;
        write_clauses(
            f,
            &self.valid,
            &self.where_clause,
            &self.when_clause,
            &None,
        )
    }
}

impl fmt::Display for Create {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "create {} {} {} (", self.class, self.kind, self.rel)?;
        for (i, (name, ty)) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name} = {ty}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Modify {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "modify {} to {}", self.rel, self.organization)?;
        if let Some(k) = &self.key {
            write!(f, " on {k}")?;
        }
        if let Some(ff) = self.fillfactor {
            write!(f, " where fillfactor = {ff}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Copy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "copy {} {} {}",
            self.rel,
            if self.from { "from" } else { "into" },
            quote_str(&self.file)
        )
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Int(v) => write!(f, "{v}"),
            Expr::Float(v) => {
                // Keep a decimal point so the literal re-lexes as a float.
                if v.fract() == 0.0 && v.is_finite() {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Expr::Str(s) => write!(f, "{}", quote_str(s)),
            Expr::Attr { var, attr } => write!(f, "{var}.{attr}"),
            Expr::Bin { op, lhs, rhs } => {
                write!(f, "({lhs} {} {rhs})", op.as_str())
            }
            Expr::Neg(e) => write!(f, "(- {e})"),
            Expr::Not(e) => write!(f, "(not {e})"),
            Expr::Agg { func, arg } => {
                write!(f, "{}({arg})", func.as_str())
            }
        }
    }
}

impl fmt::Display for TemporalExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemporalExpr::Var(v) => write!(f, "{v}"),
            TemporalExpr::Lit(s) => write!(f, "{}", quote_str(s)),
            TemporalExpr::Start(e) => write!(f, "start of {e}"),
            TemporalExpr::End(e) => write!(f, "end of {e}"),
            TemporalExpr::Overlap(a, b) => write!(f, "({a} overlap {b})"),
            TemporalExpr::Extend(a, b) => write!(f, "({a} extend {b})"),
        }
    }
}

impl fmt::Display for TemporalPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemporalPred::Precede(a, b) => write!(f, "{a} precede {b}"),
            TemporalPred::Overlap(a, b) => write!(f, "{a} overlap {b}"),
            TemporalPred::Equal(a, b) => write!(f, "{a} equal {b}"),
            TemporalPred::And(a, b) => write!(f, "({a}) and ({b})"),
            TemporalPred::Or(a, b) => write!(f, "({a}) or ({b})"),
            TemporalPred::Not(p) => write!(f, "not ({p})"),
        }
    }
}

impl fmt::Display for ValidClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidClause::Interval { from, to } => {
                write!(f, "valid from {from} to {to}")
            }
            ValidClause::At(e) => write!(f, "valid at {e}"),
        }
    }
}

impl fmt::Display for AsOf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "as of {}", self.at)?;
        if let Some(t) = &self.through {
            write!(f, " through {t}")?;
        }
        Ok(())
    }
}
