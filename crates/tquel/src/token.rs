//! Tokens and the lexer for TQuel.
//!
//! TQuel is line-oriented free-form text like its parent Quel: keywords are
//! case-insensitive, identifiers are `[a-zA-Z_][a-zA-Z0-9_]*`, string
//! literals are double-quoted (they double as date/time literals, e.g.
//! `"08:00 1/1/80"`), and statements may optionally be separated by `;`.

use std::fmt;
use tdbms_kernel::{Error, Result};

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token itself.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// The kinds of TQuel tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword (already lower-cased).
    Keyword(Keyword),
    /// Identifier (already lower-cased).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Double-quoted string literal (quotes stripped).
    Str(String),
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semi,
    /// End of input.
    Eof,
}

macro_rules! keywords {
    ($($variant:ident => $text:literal),+ $(,)?) => {
        /// Reserved words of TQuel.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[allow(missing_docs)]
        pub enum Keyword {
            $($variant),+
        }

        impl Keyword {
            /// Parse a lower-cased word as a keyword. (Not the `FromStr`
            /// trait: this is infallible-by-Option and keyword-specific.)
            #[allow(clippy::should_implement_trait)]
            pub fn from_str(s: &str) -> Option<Keyword> {
                match s {
                    $($text => Some(Keyword::$variant),)+
                    _ => None,
                }
            }

            /// The keyword's source text.
            pub fn as_str(self) -> &'static str {
                match self {
                    $(Keyword::$variant => $text),+
                }
            }
        }
    };
}

keywords! {
    Range => "range",
    Of => "of",
    Is => "is",
    Retrieve => "retrieve",
    Into => "into",
    Where => "where",
    When => "when",
    Valid => "valid",
    From => "from",
    To => "to",
    At => "at",
    As => "as",
    Through => "through",
    Append => "append",
    Delete => "delete",
    Replace => "replace",
    Create => "create",
    Destroy => "destroy",
    Modify => "modify",
    Copy => "copy",
    On => "on",
    Persistent => "persistent",
    Static => "static",
    Rollback => "rollback",
    Historical => "historical",
    Temporal => "temporal",
    Interval => "interval",
    Event => "event",
    Start => "start",
    End => "end",
    Overlap => "overlap",
    Extend => "extend",
    Precede => "precede",
    Equal => "equal",
    And => "and",
    Or => "or",
    Not => "not",
    Mod => "mod",
    Heap => "heap",
    Hash => "hash",
    Isam => "isam",
    Fillfactor => "fillfactor",
    Index => "index",
    Sort => "sort",
    By => "by",
    Asc => "asc",
    Desc => "desc",
    Explain => "explain",
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{}", k.as_str()),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Int(i) => write!(f, "{i}"),
            TokenKind::Float(x) => write!(f, "{x}"),
            TokenKind::Str(s) => write!(f, "\"{s}\""),
            TokenKind::Eq => write!(f, "="),
            TokenKind::Ne => write!(f, "!="),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Semi => write!(f, ";"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// Tokenize a TQuel source string.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! push {
        ($kind:expr, $c:expr) => {
            out.push(Token {
                kind: $kind,
                line,
                col: $c,
            })
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        let start_col = col;
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                // Quel comment: /* ... */
                let mut j = i + 2;
                loop {
                    if j + 1 >= bytes.len() {
                        return Err(Error::Lex {
                            line,
                            col: start_col,
                            msg: "unterminated comment".into(),
                        });
                    }
                    if bytes[j] == b'\n' {
                        line += 1;
                        col = 0;
                    }
                    if bytes[j] == b'*' && bytes[j + 1] == b'/' {
                        break;
                    }
                    j += 1;
                    col += 1;
                }
                col += 2;
                i = j + 2;
            }
            '"' => {
                let mut s = String::new();
                let mut j = i + 1;
                let mut c2 = col + 1;
                loop {
                    if j >= bytes.len() || bytes[j] == b'\n' {
                        return Err(Error::Lex {
                            line,
                            col: start_col,
                            msg: "unterminated string literal".into(),
                        });
                    }
                    if bytes[j] == b'"' {
                        break;
                    }
                    if bytes[j] == b'\\' && j + 1 < bytes.len() {
                        s.push(bytes[j + 1] as char);
                        j += 2;
                        c2 += 2;
                    } else {
                        s.push(bytes[j] as char);
                        j += 1;
                        c2 += 1;
                    }
                }
                push!(TokenKind::Str(s), start_col);
                i = j + 1;
                col = c2 + 1;
            }
            '0'..='9' => {
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let is_float = j + 1 < bytes.len()
                    && bytes[j] == b'.'
                    && bytes[j + 1].is_ascii_digit();
                if is_float {
                    j += 1;
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                    let text = &src[i..j];
                    let v: f64 = text.parse().map_err(|_| Error::Lex {
                        line,
                        col: start_col,
                        msg: format!("bad float literal {text:?}"),
                    })?;
                    push!(TokenKind::Float(v), start_col);
                } else {
                    let text = &src[i..j];
                    let v: i64 = text.parse().map_err(|_| Error::Lex {
                        line,
                        col: start_col,
                        msg: format!("integer literal {text:?} overflows"),
                    })?;
                    push!(TokenKind::Int(v), start_col);
                }
                col += (j - i) as u32;
                i = j;
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let mut j = i;
                while j < bytes.len()
                    && (bytes[j].is_ascii_alphanumeric()
                        || bytes[j] == b'_')
                {
                    j += 1;
                }
                let word = src[i..j].to_ascii_lowercase();
                match Keyword::from_str(&word) {
                    Some(k) => push!(TokenKind::Keyword(k), start_col),
                    None => push!(TokenKind::Ident(word), start_col),
                }
                col += (j - i) as u32;
                i = j;
            }
            '=' => {
                push!(TokenKind::Eq, start_col);
                i += 1;
                col += 1;
            }
            '!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                push!(TokenKind::Ne, start_col);
                i += 2;
                col += 2;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(TokenKind::Le, start_col);
                    i += 2;
                    col += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    push!(TokenKind::Ne, start_col);
                    i += 2;
                    col += 2;
                } else {
                    push!(TokenKind::Lt, start_col);
                    i += 1;
                    col += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(TokenKind::Ge, start_col);
                    i += 2;
                    col += 2;
                } else {
                    push!(TokenKind::Gt, start_col);
                    i += 1;
                    col += 1;
                }
            }
            '+' => {
                push!(TokenKind::Plus, start_col);
                i += 1;
                col += 1;
            }
            '-' => {
                push!(TokenKind::Minus, start_col);
                i += 1;
                col += 1;
            }
            '*' => {
                push!(TokenKind::Star, start_col);
                i += 1;
                col += 1;
            }
            '/' => {
                push!(TokenKind::Slash, start_col);
                i += 1;
                col += 1;
            }
            '(' => {
                push!(TokenKind::LParen, start_col);
                i += 1;
                col += 1;
            }
            ')' => {
                push!(TokenKind::RParen, start_col);
                i += 1;
                col += 1;
            }
            ',' => {
                push!(TokenKind::Comma, start_col);
                i += 1;
                col += 1;
            }
            '.' => {
                push!(TokenKind::Dot, start_col);
                i += 1;
                col += 1;
            }
            ';' => {
                push!(TokenKind::Semi, start_col);
                i += 1;
                col += 1;
            }
            other => {
                return Err(Error::Lex {
                    line,
                    col: start_col,
                    msg: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_paper_query() {
        let toks = kinds("retrieve (h.id) where h.id = 500");
        assert_eq!(
            toks,
            vec![
                TokenKind::Keyword(Keyword::Retrieve),
                TokenKind::LParen,
                TokenKind::Ident("h".into()),
                TokenKind::Dot,
                TokenKind::Ident("id".into()),
                TokenKind::RParen,
                TokenKind::Keyword(Keyword::Where),
                TokenKind::Ident("h".into()),
                TokenKind::Dot,
                TokenKind::Ident("id".into()),
                TokenKind::Eq,
                TokenKind::Int(500),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            kinds("RETRIEVE Retrieve retrieve")[..3],
            [
                TokenKind::Keyword(Keyword::Retrieve),
                TokenKind::Keyword(Keyword::Retrieve),
                TokenKind::Keyword(Keyword::Retrieve)
            ]
        );
        // Identifiers are lower-cased (Quel is case-insensitive).
        assert_eq!(
            kinds("Temporal_H")[0],
            TokenKind::Ident("temporal_h".into())
        );
    }

    #[test]
    fn strings_keep_case_and_spaces() {
        assert_eq!(
            kinds("\"08:00 1/1/80\"")[0],
            TokenKind::Str("08:00 1/1/80".into())
        );
        assert_eq!(kinds(r#""a\"b""#)[0], TokenKind::Str("a\"b".into()));
    }

    #[test]
    fn numbers_and_operators() {
        assert_eq!(
            kinds("1 2.5 <= >= != <> < > = + - * /"),
            vec![
                TokenKind::Int(1),
                TokenKind::Float(2.5),
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Eq,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        // retrieve ( h . id ) <eof> — the comment vanishes.
        assert_eq!(
            kinds("retrieve /* 1024 tuples, hashed on id */ (h.id)").len(),
            7
        );
    }

    #[test]
    fn errors_carry_positions() {
        match lex("retrieve\n  @") {
            Err(Error::Lex { line, col, .. }) => {
                assert_eq!((line, col), (2, 3));
            }
            other => panic!("expected lex error, got {other:?}"),
        }
        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("99999999999999999999").is_err());
    }

    #[test]
    fn time_keywords_tokenize_as_keywords() {
        assert_eq!(
            kinds("when h overlap i as of \"1981\"")[..6],
            [
                TokenKind::Keyword(Keyword::When),
                TokenKind::Ident("h".into()),
                TokenKind::Keyword(Keyword::Overlap),
                TokenKind::Ident("i".into()),
                TokenKind::Keyword(Keyword::As),
                TokenKind::Keyword(Keyword::Of),
            ]
        );
    }
}
