//! # tdbms-tquel
//!
//! The TQuel temporal query language (Snodgrass 1984/1985): a superset of
//! Quel that adds the `when` temporal predicate, the `valid` clause, the
//! `as of` rollback clause, and the extended `create` statement that
//! declares a relation's class (static / rollback / historical / temporal)
//! and kind (interval / event).
//!
//! This crate is pure syntax: [`token`] (lexer), [`ast`], [`parser`], and
//! [`printer`] (round-trippable pretty-printing). Name resolution and
//! execution live in `tdbms-core`, which knows the catalog.
//!
//! ```
//! use tdbms_tquel::parse_statement;
//!
//! let stmt = parse_statement(
//!     r#"retrieve (h.id, h.seq) where h.id = 500 when h overlap "now""#,
//! ).unwrap();
//! assert!(matches!(stmt, tdbms_tquel::ast::Statement::Retrieve(_)));
//! ```

pub mod ast;
pub mod parser;
pub mod printer;
pub mod token;

pub use ast::Statement;
pub use parser::{parse_program, parse_statement};

#[cfg(test)]
mod tests {
    use super::ast::*;
    use super::*;
    use tdbms_kernel::{DatabaseClass, Domain, TemporalKind};

    fn parse1(src: &str) -> Statement {
        parse_statement(src).unwrap_or_else(|e| panic!("{src:?}: {e}"))
    }

    fn roundtrip(src: &str) {
        let ast = parse1(src);
        let printed = ast.to_string();
        let reparsed = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("reparse of {printed:?}: {e}"));
        assert_eq!(ast, reparsed, "printed form: {printed}");
    }

    #[test]
    fn parses_range_statement() {
        assert_eq!(
            parse1("range of h is Temporal_h"),
            Statement::Range {
                var: "h".into(),
                rel: "temporal_h".into()
            }
        );
    }

    #[test]
    fn parses_every_benchmark_query() {
        // The twelve queries of the paper's Figure 4 (clause-for-clause).
        let queries = [
            r#"retrieve (h.id, h.seq) where h.id = 500"#,
            r#"retrieve (i.id, i.seq) where i.id = 500"#,
            r#"retrieve (h.id, h.seq) as of "08:00 1/1/80""#,
            r#"retrieve (i.id, i.seq) as of "08:00 1/1/80""#,
            r#"retrieve (h.id, h.seq) where h.id = 500 when h overlap "now""#,
            r#"retrieve (i.id, i.seq) where i.id = 500 when i overlap "now""#,
            r#"retrieve (h.id, h.seq) where h.amount = 69400 when h overlap "now""#,
            r#"retrieve (i.id, i.seq) where i.amount = 73700 when i overlap "now""#,
            r#"retrieve (h.id, i.id, i.amount) where h.id = i.amount
               when h overlap i and i overlap "now""#,
            r#"retrieve (i.id, h.id, h.amount) where i.id = h.amount
               when h overlap i and h overlap "now""#,
            r#"retrieve (h.id, h.seq, i.id, i.seq, i.amount)
               valid from start of h to end of i
               when start of h precede i
               as of "4:00 1/1/80""#,
            r#"retrieve (h.id, h.seq, i.id, i.seq, i.amount)
               valid from start of (h overlap i) to end of (h extend i)
               where h.id = 500 and i.amount = 73700
               when h overlap i
               as of "now""#,
        ];
        for q in queries {
            let Statement::Retrieve(_) = parse1(q) else {
                panic!("{q} did not parse as retrieve");
            };
            roundtrip(q);
        }
    }

    #[test]
    fn figure2_query_structure() {
        // The paper's Figure 2 example, checked in detail.
        let q = r#"retrieve (h.id, h.seq, i.id, i.seq, i.amount)
                   valid from start of (h overlap i) to end of (h extend i)
                   where h.id = 500 and i.amount = 73700
                   when h overlap i
                   as of "1981""#;
        let Statement::Retrieve(r) = parse1(q) else {
            unreachable!()
        };
        assert_eq!(r.targets.len(), 5);
        let Some(ValidClause::Interval { from, to }) = &r.valid else {
            panic!("expected interval valid clause");
        };
        assert_eq!(
            *from,
            TemporalExpr::Start(Box::new(TemporalExpr::Overlap(
                Box::new(TemporalExpr::Var("h".into())),
                Box::new(TemporalExpr::Var("i".into())),
            )))
        );
        assert_eq!(
            *to,
            TemporalExpr::End(Box::new(TemporalExpr::Extend(
                Box::new(TemporalExpr::Var("h".into())),
                Box::new(TemporalExpr::Var("i".into())),
            )))
        );
        assert_eq!(
            r.when_clause,
            Some(TemporalPred::Overlap(
                TemporalExpr::Var("h".into()),
                TemporalExpr::Var("i".into()),
            ))
        );
        assert_eq!(
            r.as_of,
            Some(AsOf {
                at: TemporalExpr::Lit("1981".into()),
                through: None
            })
        );
        // The where clause is (h.id = 500) and (i.amount = 73700).
        let Some(Expr::Bin { op: BinOp::And, .. }) = r.where_clause else {
            panic!("expected and-qualification");
        };
    }

    #[test]
    fn parses_figure3_creates() {
        let q = "create persistent interval Temporal_h \
                 (id = i4, amount = i4, seq = i4, string = c96)";
        let Statement::Create(c) = parse1(q) else {
            unreachable!()
        };
        assert_eq!(c.rel, "temporal_h");
        assert_eq!(c.class, DatabaseClass::Temporal);
        assert_eq!(c.kind, TemporalKind::Interval);
        assert_eq!(
            c.attrs,
            vec![
                ("id".to_string(), Domain::I4),
                ("amount".to_string(), Domain::I4),
                ("seq".to_string(), Domain::I4),
                ("string".to_string(), Domain::Char(96)),
            ]
        );
        roundtrip(q);
    }

    #[test]
    fn parses_figure3_modifies() {
        let q = "modify Temporal_h to hash on id where fillfactor = 100";
        let Statement::Modify(m) = parse1(q) else {
            unreachable!()
        };
        assert_eq!(m.rel, "temporal_h");
        assert_eq!(m.organization, "hash");
        assert_eq!(m.key.as_deref(), Some("id"));
        assert_eq!(m.fillfactor, Some(100));
        roundtrip(q);
        let q = "modify Temporal_i to isam on id where fillfactor = 50";
        let Statement::Modify(m) = parse1(q) else {
            unreachable!()
        };
        assert_eq!(m.organization, "isam");
        assert_eq!(m.fillfactor, Some(50));
        roundtrip("modify r to heap");
    }

    #[test]
    fn parses_dml_statements() {
        roundtrip(r#"append to emp (name = "merrie", salary = 11000)"#);
        roundtrip(
            r#"append to emp (name = "merrie") valid from "1980" to "forever""#,
        );
        roundtrip(r#"delete e where e.name = "merrie""#);
        roundtrip(
            r#"delete e valid from "1982" to "forever" where e.id = 1"#,
        );
        roundtrip(
            r#"replace e (salary = 12000) valid from "6/1/80" to "forever"
               where e.name = "merrie""#,
        );
        roundtrip("destroy emp");
        roundtrip(r#"copy emp from "/tmp/emp.dat""#);
        roundtrip(r#"copy emp into "/tmp/emp.out""#);
    }

    #[test]
    fn parses_retrieve_into() {
        let Statement::Retrieve(r) =
            parse1("retrieve into snap (e.id) where e.id < 3")
        else {
            unreachable!()
        };
        assert_eq!(r.into.as_deref(), Some("snap"));
        roundtrip("retrieve into snap (e.id) where e.id < 3");
    }

    #[test]
    fn parses_named_targets_and_arithmetic() {
        let Statement::Retrieve(r) = parse1(
            "retrieve (raise = e.salary * 2 + 1, e.name) where not e.id = 3",
        ) else {
            unreachable!()
        };
        assert_eq!(r.targets[0].name.as_deref(), Some("raise"));
        // Precedence: (e.salary * 2) + 1.
        let Expr::Bin {
            op: BinOp::Add,
            lhs,
            ..
        } = &r.targets[0].expr
        else {
            panic!("expected +: {:?}", r.targets[0].expr);
        };
        assert!(matches!(**lhs, Expr::Bin { op: BinOp::Mul, .. }));
        roundtrip("retrieve (raise = e.salary * 2 + 1, e.name) where not e.id = 3");
    }

    #[test]
    fn parses_nested_temporal_predicates() {
        roundtrip(
            r#"retrieve (h.id) when (h overlap i) and (not (h precede "now"))"#,
        );
        roundtrip(r#"retrieve (h.id) when (h precede i) or (i precede h)"#);
        roundtrip(
            r#"retrieve (h.id) when start of (h extend i) precede end of h"#,
        );
        roundtrip(r#"retrieve (h.id) when h equal i"#);
    }

    #[test]
    fn parses_as_of_through() {
        let Statement::Retrieve(r) =
            parse1(r#"retrieve (h.id) as of "1981" through "1983""#)
        else {
            unreachable!()
        };
        let as_of = r.as_of.unwrap();
        assert_eq!(as_of.at, TemporalExpr::Lit("1981".into()));
        assert_eq!(as_of.through, Some(TemporalExpr::Lit("1983".into())));
        roundtrip(r#"retrieve (h.id) as of "1981" through "1983""#);
    }

    #[test]
    fn parses_valid_at_event() {
        let Statement::Retrieve(r) =
            parse1(r#"retrieve (e.id) valid at "1981""#)
        else {
            unreachable!()
        };
        assert_eq!(
            r.valid,
            Some(ValidClause::At(TemporalExpr::Lit("1981".into())))
        );
        roundtrip(r#"retrieve (e.id) valid at "1981""#);
    }

    #[test]
    fn parses_multi_statement_programs() {
        let stmts = parse_program(
            "range of h is temporal_h\n\
             range of i is temporal_i;\n\
             retrieve (h.id) where h.id = 500",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn rejects_malformed_statements() {
        for bad in [
            "retrieve",                         // no target list
            "retrieve ()",                      // empty target list
            "retrieve (h.id",                   // unterminated
            "retrieve (id)",                    // unqualified attribute
            "range h is r",                     // missing `of`
            "append to r ()",                   // empty assignments
            "replace e (x = 1) as of \"1981\"", // as-of on update
            "delete e as of \"1981\"",          // as-of on delete
            "modify r to hash where fillfactor = 0",
            "modify r to hash where fillfactor = 101",
            "create r (x = q9)", // bad domain
            "retrieve (h.id) where h.id = 500 where h.id = 2", // dup clause
            "copy r \"f\"",      // missing direction
            "frobnicate (x)",    // unknown statement
            "",                  // nothing (for parse_statement)
        ] {
            assert!(
                parse_statement(bad).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn deep_nesting_is_a_parse_error_not_a_stack_overflow() {
        // A recursive-descent parser dies by stack overflow on
        // adversarially deep input unless it counts depth. These used to
        // kill the whole process; they must come back as `Error::Parse`.
        let deep_parens = format!(
            "retrieve (x = {}1{})",
            "(".repeat(50_000),
            ")".repeat(50_000)
        );
        let deep_nots = format!(
            "retrieve (h.id) where {} h.id = 1",
            "not ".repeat(60_000)
        );
        let deep_negs = format!("retrieve (x = {}1)", "- ".repeat(60_000));
        let deep_starts = format!(
            r#"retrieve (h.id) when {} h precede "now""#,
            "start of ".repeat(60_000)
        );
        let deep_tparens = format!(
            r#"retrieve (h.id) when {}h overlap i{} precede "now""#,
            "(".repeat(50_000),
            ")".repeat(50_000)
        );
        let deep_tnots = format!(
            r#"retrieve (h.id) when {} h precede "now""#,
            "not ".repeat(60_000)
        );
        for src in [
            &deep_parens,
            &deep_nots,
            &deep_negs,
            &deep_starts,
            &deep_tparens,
            &deep_tnots,
        ] {
            match parse_statement(src) {
                Err(tdbms_kernel::Error::Parse { msg, .. }) => {
                    assert!(msg.contains("nesting too deep"), "{msg}");
                }
                other => panic!("expected depth error, got {other:?}"),
            }
        }
        // Reasonable nesting still parses.
        let ok =
            format!("retrieve (x = {}1{})", "(".repeat(60), ")".repeat(60));
        assert!(parse_statement(&ok).is_ok());
        assert!(parse_statement(
            r#"retrieve (h.id) when not not (h precede "now")"#
        )
        .is_ok());
    }

    #[test]
    fn error_positions_point_at_the_problem() {
        let err =
            parse_statement("retrieve (h.id) where\nh.id ==").unwrap_err();
        match err {
            tdbms_kernel::Error::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn string_literals_with_escapes_roundtrip() {
        // The lexer treats `\x` as an escape for any x, so the printer
        // must escape both `\` and `"` (regression: a lone backslash used
        // to print as `"\"`, an unterminated literal).
        for s in ["\\", "\"", "a\\b", "say \"hi\"", "trail\\", "\\\""] {
            let q = format!(
                "retrieve (v.x) where v.x = {}",
                printer::quote_str(s)
            );
            let Statement::Retrieve(r) = parse1(&q) else {
                unreachable!()
            };
            assert_eq!(
                r.where_clause,
                Some(Expr::Bin {
                    op: BinOp::Eq,
                    lhs: Box::new(Expr::Attr {
                        var: "v".into(),
                        attr: "x".into()
                    }),
                    rhs: Box::new(Expr::Str(s.into())),
                }),
                "literal {s:?} did not survive quote_str + lex"
            );
            roundtrip(&q);
        }
    }

    #[test]
    fn keywords_cannot_be_relation_names() {
        assert!(parse_statement("range of h is retrieve").is_err());
    }

    #[test]
    fn parses_index_statements() {
        let q = "index on emp is emp_salary (salary)";
        let Statement::Index(i) = parse1(q) else {
            unreachable!()
        };
        assert_eq!(i.rel, "emp");
        assert_eq!(i.name, "emp_salary");
        assert_eq!(i.attr, "salary");
        assert_eq!(i.structure, None);
        roundtrip(q);
        let q = "index on emp is emp_salary (salary) to heap";
        let Statement::Index(i) = parse1(q) else {
            unreachable!()
        };
        assert_eq!(i.structure.as_deref(), Some("heap"));
        roundtrip(q);
        roundtrip("index on emp is e2 (x) to hash");
        assert!(parse_statement("index on emp is e (x) to isam").is_err());
        assert!(parse_statement("index emp is e (x)").is_err());
        assert!(parse_statement("index on emp e (x)").is_err());
    }

    #[test]
    fn parses_aggregates() {
        let q = "retrieve (e.dept, total = sum(e.salary), n = count(e.id))";
        let Statement::Retrieve(r) = parse1(q) else {
            unreachable!()
        };
        assert_eq!(r.targets.len(), 3);
        let Expr::Agg {
            func: AggFunc::Sum,
            arg,
        } = &r.targets[1].expr
        else {
            panic!("expected sum aggregate: {:?}", r.targets[1].expr);
        };
        assert!(matches!(**arg, Expr::Attr { .. }));
        roundtrip(q);
        // Aggregate over an expression.
        roundtrip("retrieve (m = max(e.salary * 2 + 1))");
        roundtrip("retrieve (a = avg(e.x), b = min(e.x))");
        // An unknown function name is a parse error.
        assert!(parse_statement("retrieve (x = frobnicate(e.y))").is_err());
        // A bare identifier still needs qualification.
        assert!(parse_statement("retrieve (count)").is_err());
    }

    #[test]
    fn parses_sort_by() {
        let q = "retrieve (e.id, e.x) where e.x > 1 sort by x desc, id";
        let Statement::Retrieve(r) = parse1(q) else {
            unreachable!()
        };
        assert_eq!(
            r.sort,
            vec![
                SortKey {
                    column: "x".into(),
                    descending: true
                },
                SortKey {
                    column: "id".into(),
                    descending: false
                },
            ]
        );
        roundtrip(q);
        roundtrip("retrieve (e.id) sort by id asc");
        assert!(parse_statement("retrieve (e.id) sort id").is_err());
    }
}
