//! # tdbms-plan
//!
//! The cost-based query planner underneath the temporal DBMS:
//!
//! * [`StatsCatalog`] — per-relation statistics (tuple counts, page
//!   counts, ISAM directory depth, distinct-key estimates) harvested
//!   from the catalog and pager metadata and refreshed incrementally
//!   after every commit. The distinct-key counter is the one figure the
//!   catalog cannot answer directly: appends introduce new keys while
//!   replaces/deletes only lengthen version chains, so tracking inserts
//!   yields the paper's chain-length growth (fig5–fig10) for free as
//!   `tuple_count / distinct_keys`.
//! * [`plan_query`] — a page-I/O cost model over [`VarFacts`]: choose
//!   the one-variable detachment order and the access path per tuple
//!   variable (heap scan vs hash/ISAM key probe vs secondary index) by
//!   estimated page I/O. Pure arithmetic over pre-resolved facts, so it
//!   unit-tests without a database.
//! * [`PlanCache`] — a bounded, statement-text-keyed cache with
//!   hit/miss counters, so a server's hot queries skip parse/bind/plan.
//!
//! The planner only *permutes* the detachment set the executor computes
//! itself and never changes which pages a detachment touches, so paper
//! mode stays byte-identical whichever order it picks (each detachment
//! reads only its own relation and writes only its own temporary).

use std::collections::{HashMap, VecDeque};
use tdbms_storage::{AccessMethod, Catalog, Pager};

/// Which planner drives retrieve execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannerMode {
    /// The historical fixed heuristic: detach in variable order.
    Fixed,
    /// Statistics-fed cost-based ordering (the default).
    Cost,
}

impl PlannerMode {
    /// Resolve from the `TDBMS_PLANNER` environment variable
    /// (`fixed` selects the heuristic; anything else is cost-based).
    pub fn from_env() -> Self {
        match std::env::var("TDBMS_PLANNER") {
            Ok(v) if v.eq_ignore_ascii_case("fixed") => PlannerMode::Fixed,
            _ => PlannerMode::Cost,
        }
    }
}

/// Maintained statistics of one stored relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelStats {
    /// Relation name.
    pub name: String,
    /// Storage organization.
    pub method: AccessMethod,
    /// Stored row (version) count, from the catalog.
    pub tuple_count: u64,
    /// Total pages including any ISAM directory.
    pub total_pages: u64,
    /// Pages a sequential scan reads.
    pub scannable_pages: u64,
    /// ISAM directory levels (0 for heap/hash).
    pub directory_levels: u64,
    /// Maintained count of *inserted* keys (0 = unknown). Replaces and
    /// deletes add versions without adding keys, so
    /// `tuple_count / distinct` is the mean version-chain length.
    pub distinct_keys: u64,
    /// Fixed row width in bytes.
    pub row_width: u64,
    /// Versions migrated into the clustered history sidecar by online
    /// reorganization (0 when the relation has no sidecar). These rows
    /// are *off* the primary's chains, which is why [`chain_len`]
    /// excludes them.
    ///
    /// [`chain_len`]: RelStats::chain_len
    pub history_rows: u64,
    /// Pages of the clustered history sidecar.
    pub history_pages: u64,
}

impl RelStats {
    /// Distinct-key estimate with the unknown (0) case defaulted to
    /// one version per key.
    pub fn distinct_estimate(&self) -> u64 {
        if self.distinct_keys == 0 {
            self.tuple_count.max(1)
        } else {
            self.distinct_keys.min(self.tuple_count.max(1))
        }
    }

    /// Mean version/overflow-chain length in pages for a keyed probe:
    /// every version of a key lands on the same bucket / ISAM chain,
    /// one page each in the prototype's chain-walking layout. Migrated
    /// history rows are excluded — they are served from the clustered
    /// sidecar, not the primary's chains, so an at-now probe after a
    /// reorganization costs only the shortened primary chain.
    pub fn chain_len(&self) -> u64 {
        self.tuple_count.div_ceil(self.distinct_estimate()).max(1)
    }

    /// Pages a *time-travel* keyed probe adds on top of [`chain_len`]:
    /// the mean per-key cluster size of the history sidecar (clusters
    /// pack `rows_per_page` versions per page, one key per page).
    ///
    /// [`chain_len`]: RelStats::chain_len
    pub fn history_chain_len(&self) -> u64 {
        if self.history_rows == 0 {
            return 0;
        }
        // Sidecar pages are single-key, so mean cluster size is simply
        // pages over keys.
        self.history_pages.div_ceil(self.distinct_estimate()).max(1)
    }

    /// Mean stored rows per scannable page.
    pub fn rows_per_page(&self) -> u64 {
        (self.tuple_count / self.scannable_pages.max(1)).max(1)
    }
}

/// Per-relation statistics, refreshed incrementally on commit. The
/// epoch counts refreshes so cached plans can detect staleness.
#[derive(Debug, Default, Clone)]
pub struct StatsCatalog {
    epoch: u64,
    rels: HashMap<String, RelStats>,
}

impl StatsCatalog {
    /// Harvest current counts and page geometry from the catalog and
    /// pager metadata (no page I/O), preserving each relation's
    /// maintained distinct-key counter. Dropped relations lose their
    /// entry. Bumps the epoch.
    pub fn refresh(
        &mut self,
        pager: &Pager,
        catalog: &Catalog,
    ) -> tdbms_kernel::Result<()> {
        let mut fresh = HashMap::new();
        for (_, rel) in catalog.iter() {
            if rel.temporary {
                continue;
            }
            let distinct = self
                .rels
                .get(&rel.name)
                .map(|s| s.distinct_keys)
                .unwrap_or(0);
            fresh.insert(
                rel.name.clone(),
                RelStats {
                    name: rel.name.clone(),
                    method: rel.file.method(),
                    tuple_count: rel.tuple_count,
                    total_pages: u64::from(rel.file.total_pages(pager)?),
                    scannable_pages: u64::from(
                        rel.file.scannable_pages(pager)?,
                    ),
                    directory_levels: u64::from(
                        rel.file.directory_levels(),
                    ),
                    distinct_keys: distinct,
                    row_width: rel.schema.row_width() as u64,
                    history_rows: rel
                        .history
                        .as_ref()
                        .map(|h| h.rows())
                        .unwrap_or(0),
                    history_pages: match &rel.history {
                        Some(h) => u64::from(h.total_pages(pager)?),
                        None => 0,
                    },
                },
            );
        }
        self.rels = fresh;
        self.epoch += 1;
        Ok(())
    }

    /// Record `n` freshly inserted keys on a relation (append / copy /
    /// bulk load). Replaces and deletes do **not** call this: they add
    /// versions, not keys, which is exactly what makes chains grow.
    pub fn note_inserted(&mut self, rel: &str, n: u64) {
        if let Some(s) = self.rels.get_mut(rel) {
            s.distinct_keys = s.distinct_keys.saturating_add(n);
        }
    }

    /// Statistics of one relation, if maintained.
    pub fn get(&self, rel: &str) -> Option<&RelStats> {
        self.rels.get(rel)
    }

    /// Monotone refresh counter.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// Everything the cost model needs to know about one tuple variable,
/// pre-resolved by the caller so [`plan_query`] is pure arithmetic.
#[derive(Debug, Clone)]
pub struct VarFacts {
    /// Variable position in the bound query.
    pub var: usize,
    /// Underlying relation name.
    pub relation: String,
    /// Stored row (version) count.
    pub tuple_count: u64,
    /// Pages a sequential scan reads.
    pub scannable_pages: u64,
    /// ISAM directory levels (0 for heap/hash).
    pub directory_levels: u64,
    /// Mean version/overflow-chain length (pages per keyed probe).
    pub chain_len: u64,
    /// Mean stored rows per scannable page.
    pub rows_per_page: u64,
    /// Whether the variable has a one-variable conjunct at all (the
    /// executor only detaches such variables).
    pub has_own_conjunct: bool,
    /// Whether detachment is blocked (the query references the
    /// variable's transaction-time attributes, which temporaries drop).
    pub detach_blocked: bool,
    /// A constant equality probe on the primary key is available
    /// during detachment (hash bucket / ISAM descent).
    pub const_key_probe: bool,
    /// A constant equality probe on a secondary index is available
    /// during detachment.
    pub const_index_probe: bool,
    /// A keyed equality probe becomes available during tuple
    /// substitution once outer variables are bound.
    pub join_key_probe: bool,
}

impl VarFacts {
    fn detachable(&self) -> bool {
        self.has_own_conjunct && !self.detach_blocked
    }

    /// Cheapest access path available during detachment and its page
    /// cost.
    fn detach_access(&self) -> (AccessPath, u64) {
        let scan = (AccessPath::Scan, self.scannable_pages.max(1));
        if self.const_key_probe {
            // Hash: chain pages. ISAM: directory descent then chain.
            let probe =
                self.directory_levels.saturating_add(self.chain_len).max(1);
            if probe < scan.1 {
                return (AccessPath::KeyLookup, probe);
            }
        }
        if self.const_index_probe {
            // Secondary index: one directory page, then one data page
            // per matching version.
            let probe = 1u64.saturating_add(self.chain_len);
            if probe < scan.1 {
                return (AccessPath::IndexLookup, probe);
            }
        }
        scan
    }

    /// Estimated qualifying rows after this variable's own conjuncts.
    fn est_rows(&self) -> u64 {
        let (path, _) = self.detach_access();
        match path {
            AccessPath::KeyLookup | AccessPath::IndexLookup => {
                self.chain_len
            }
            AccessPath::Scan if self.has_own_conjunct => {
                (self.tuple_count / 10).max(1)
            }
            AccessPath::Scan => self.tuple_count.max(1),
        }
    }
}

/// How a tuple variable is accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Primary-organization probe (hash bucket / ISAM descent).
    KeyLookup,
    /// Secondary-index probe.
    IndexLookup,
    /// Sequential heap scan.
    Scan,
}

impl std::fmt::Display for AccessPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AccessPath::KeyLookup => "key lookup",
            AccessPath::IndexLookup => "index lookup",
            AccessPath::Scan => "scan",
        })
    }
}

/// One planned access in a [`QueryPlan`].
#[derive(Debug, Clone)]
pub struct PlanStep {
    /// Variable position.
    pub var: usize,
    /// Underlying relation name.
    pub relation: String,
    /// Whether this step is a one-variable detachment (phase 1) as
    /// opposed to a direct access during substitution.
    pub detach: bool,
    /// Chosen access path.
    pub path: AccessPath,
    /// Estimated pages read by this step (once).
    pub est_read: u64,
    /// Estimated pages written (temporary projection), 0 for
    /// non-detached steps.
    pub est_write: u64,
    /// Estimated qualifying rows the step leaves behind.
    pub est_rows: u64,
}

/// The planner's chosen shape for one retrieve.
#[derive(Debug, Clone, Default)]
pub struct QueryPlan {
    /// One step per tuple variable, detachments first in chosen order.
    pub steps: Vec<PlanStep>,
    /// Substitution nesting order (outermost first).
    pub join_order: Vec<usize>,
    /// Estimated total pages read.
    pub est_input: u64,
    /// Estimated total pages written.
    pub est_output: u64,
}

impl QueryPlan {
    /// The detachment order (variables of detaching steps, in order).
    pub fn detach_order(&self) -> Vec<usize> {
        self.steps
            .iter()
            .filter(|s| s.detach)
            .map(|s| s.var)
            .collect()
    }
}

/// Plan one retrieve from pre-resolved per-variable facts: pick each
/// variable's access path by estimated page I/O, order detachments
/// cheapest-first, and estimate total input/output pages under the
/// paper's cold-buffer nested-substitution execution (the inner
/// relation is re-read once per outer row — one frame per relation).
pub fn plan_query(facts: &[VarFacts]) -> QueryPlan {
    let single = facts.len() < 2;
    let mut steps: Vec<PlanStep> = Vec::new();
    for f in facts {
        let (path, cost) = f.detach_access();
        let detach = !single && f.detachable();
        let est_rows = f.est_rows();
        let est_write = if detach {
            (est_rows / f.rows_per_page.max(1)).max(1)
        } else {
            0
        };
        steps.push(PlanStep {
            var: f.var,
            relation: f.relation.clone(),
            detach,
            path,
            est_read: cost,
            est_write,
            est_rows,
        });
    }
    // Detachments first, cheapest first (ties by variable position);
    // non-detached accesses keep variable order after them.
    steps.sort_by_key(|s| {
        (!s.detach, if s.detach { s.est_read } else { 0 }, s.var)
    });

    // Substitution order mirrors the executor: keyed-join variables
    // nest innermost (each probe is a short chain instead of a scan).
    let mut join_order: Vec<usize> = facts.iter().map(|f| f.var).collect();
    let keyed = |v: usize| {
        facts
            .iter()
            .find(|f| f.var == v)
            .is_some_and(|f| f.join_key_probe && !f.detachable())
    };
    join_order.sort_by_key(|&v| (keyed(v), v));

    let mut est_input: u64 = 0;
    let mut est_output: u64 = 0;
    for s in &steps {
        if s.detach || single {
            est_input = est_input.saturating_add(s.est_read);
            est_output = est_output.saturating_add(s.est_write);
        }
    }
    if !single {
        // Nested substitution over the (possibly detached) variables.
        let mut outer_rows: u64 = 1;
        for &v in &join_order {
            let s = steps
                .iter()
                .find(|s| s.var == v)
                .expect("step per variable");
            let f = facts
                .iter()
                .find(|f| f.var == v)
                .expect("facts per variable");
            let per_access = if s.detach {
                s.est_write
            } else if f.join_key_probe {
                f.directory_levels.saturating_add(f.chain_len).max(1)
            } else {
                f.scannable_pages.max(1)
            };
            est_input = est_input
                .saturating_add(per_access.saturating_mul(outer_rows));
            outer_rows = outer_rows.saturating_mul(s.est_rows.max(1));
        }
    }
    QueryPlan {
        steps,
        join_order,
        est_input,
        est_output,
    }
}

/// A bounded FIFO cache keyed by statement text, with hit/miss
/// counters. The values are whatever the caller finds expensive to
/// rebuild (parsed programs, bound plans).
#[derive(Debug)]
pub struct PlanCache<V> {
    cap: usize,
    map: HashMap<String, V>,
    order: VecDeque<String>,
    hits: u64,
    misses: u64,
}

impl<V: Clone> PlanCache<V> {
    /// An empty cache holding at most `cap` entries.
    pub fn new(cap: usize) -> Self {
        PlanCache {
            cap: cap.max(1),
            map: HashMap::new(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a statement, counting a hit or miss.
    pub fn lookup(&mut self, key: &str) -> Option<V> {
        match self.map.get(key) {
            Some(v) => {
                self.hits += 1;
                Some(v.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or replace) an entry, evicting the oldest insertion
    /// once full.
    pub fn insert(&mut self, key: String, value: V) {
        if self.map.insert(key.clone(), value).is_none() {
            self.order.push_back(key);
            while self.map.len() > self.cap {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }

    /// Drop every entry (counters survive).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    /// Lifetime `(hits, misses)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(tuples: u64, pages: u64, distinct: u64) -> RelStats {
        RelStats {
            name: "r".into(),
            method: AccessMethod::Hash,
            tuple_count: tuples,
            total_pages: pages,
            scannable_pages: pages,
            directory_levels: 0,
            distinct_keys: distinct,
            row_width: 16,
            history_rows: 0,
            history_pages: 0,
        }
    }

    fn facts(var: usize, s: &RelStats, keyed: bool) -> VarFacts {
        VarFacts {
            var,
            relation: s.name.clone(),
            tuple_count: s.tuple_count,
            scannable_pages: s.scannable_pages,
            directory_levels: s.directory_levels,
            chain_len: s.chain_len(),
            rows_per_page: s.rows_per_page(),
            has_own_conjunct: true,
            detach_blocked: false,
            const_key_probe: keyed,
            const_index_probe: false,
            join_key_probe: keyed,
        }
    }

    #[test]
    fn chain_length_tracks_versions_per_key() {
        // 1024 keys, evolved twice: 3072 versions → chains of 3.
        let s = stats(3072, 384, 1024);
        assert_eq!(s.chain_len(), 3);
        // Unknown distinct count defaults to one version per key.
        let s = stats(3072, 384, 0);
        assert_eq!(s.chain_len(), 1);
    }

    #[test]
    fn migrated_history_shortens_the_primary_chain_estimate() {
        // Before reorganization: 3 versions per key in the primary.
        let before = stats(3072, 384, 1024);
        assert_eq!(before.chain_len(), 3);
        assert_eq!(before.history_chain_len(), 0);
        // After: superseded versions migrated, one page per key cluster.
        let mut after = stats(1024, 128, 1024);
        after.history_rows = 2048;
        after.history_pages = 1024;
        assert_eq!(after.chain_len(), 1);
        assert_eq!(after.history_chain_len(), 1);
    }

    #[test]
    fn keyed_probe_beats_scan_and_costs_the_chain() {
        let s = stats(3072, 384, 1024);
        let f = facts(0, &s, true);
        let (path, cost) = f.detach_access();
        assert_eq!(path, AccessPath::KeyLookup);
        assert_eq!(cost, 3); // the paper's 1 + 2·uc growth at uc=1
    }

    #[test]
    fn unkeyed_access_scans_every_page() {
        let s = stats(1024, 128, 1024);
        let f = facts(0, &s, false);
        let (path, cost) = f.detach_access();
        assert_eq!(path, AccessPath::Scan);
        assert_eq!(cost, 128);
    }

    #[test]
    fn isam_probe_adds_directory_descent() {
        let mut s = stats(1024, 129, 1024);
        s.method = AccessMethod::Isam;
        s.scannable_pages = 128;
        s.directory_levels = 1;
        let f = facts(0, &s, true);
        let (path, cost) = f.detach_access();
        assert_eq!(path, AccessPath::KeyLookup);
        assert_eq!(cost, 2); // directory page + one-page chain
    }

    #[test]
    fn detachments_order_cheapest_first() {
        let cheap = stats(1024, 128, 1024); // keyed probe: 1 page
        let dear = stats(1024, 128, 1024); // scan: 128 pages
        let plan =
            plan_query(&[facts(0, &dear, false), facts(1, &cheap, true)]);
        assert_eq!(plan.detach_order(), vec![1, 0]);
        assert!(plan.est_input >= 129);
    }

    #[test]
    fn single_variable_queries_never_detach() {
        let s = stats(1024, 128, 1024);
        let plan = plan_query(&[facts(0, &s, true)]);
        assert!(plan.detach_order().is_empty());
        assert_eq!(plan.est_input, 1);
        assert_eq!(plan.est_output, 0);
    }

    #[test]
    fn plan_cache_counts_and_evicts_fifo() {
        let mut c: PlanCache<u32> = PlanCache::new(2);
        assert_eq!(c.lookup("a"), None);
        c.insert("a".into(), 1);
        c.insert("b".into(), 2);
        assert_eq!(c.lookup("a"), Some(1));
        c.insert("c".into(), 3); // evicts "a"
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup("a"), None);
        assert_eq!(c.lookup("c"), Some(3));
        assert_eq!(c.stats(), (2, 2));
    }

    #[test]
    fn stats_catalog_epoch_is_monotone() {
        let mut sc = StatsCatalog::default();
        assert_eq!(sc.epoch(), 0);
        let pager = Pager::in_memory();
        let catalog = Catalog::new();
        sc.refresh(&pager, &catalog).unwrap();
        assert_eq!(sc.epoch(), 1);
        assert!(sc.get("nope").is_none());
    }
}
