//! The blocking thread-per-connection TCP server.
//!
//! One [`Server`] owns one [`Engine`]; every accepted connection gets a
//! thread and its own [`Session`]. Guardrails are on by default:
//!
//! - **Admission control** — past the connection cap, a new connection
//!   receives a typed [`Error::Busy`] response and is closed immediately;
//!   clients never hang in an invisible queue.
//! - **Per-query limits** — wall-clock timeout, row cap, and reply-byte
//!   cap, clamped so a client may tighten but never loosen them.
//! - **No panics, no file access** — every connection handler runs under
//!   `catch_unwind` (a panic closes that connection and is counted, the
//!   server keeps serving), and `copy` statements are refused unless
//!   explicitly allowed (they touch server-local files).
//! - **Graceful shutdown** — on signal or request the listener stops
//!   accepting, in-flight queries are interrupted via their sessions'
//!   cancel flags, connection threads are joined, and a clean checkpoint
//!   is taken so the database audits clean.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tdbms_core::{Engine, SessionLimits};
use tdbms_kernel::{Error, Result};

use crate::wire::{
    decode_request, encode_response, write_frame, Reply, Request, Response,
    StatsReply, MAX_REQUEST_FRAME,
};

/// Tuning knobs of one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent connections admitted; the next one gets `Busy`.
    pub max_connections: usize,
    /// Default and maximum per-query wall-clock budget.
    pub query_timeout: Duration,
    /// Default and maximum rows one retrieve may return.
    pub max_rows: u64,
    /// Maximum encoded reply size per response frame.
    pub max_reply_bytes: usize,
    /// Allow `copy` statements (server-local file access). Off for any
    /// server reachable by untrusted clients.
    pub allow_copy: bool,
    /// Honor wire `Shutdown` requests (in addition to signals and the
    /// programmatic handle).
    pub allow_remote_shutdown: bool,
    /// Slow-loris defense: once a frame has started arriving it must
    /// complete within this deadline, and a blocked socket write gives
    /// up after it. Idle connections (no frame in flight) are exempt.
    pub io_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 32,
            query_timeout: Duration::from_secs(10),
            max_rows: 1 << 16,
            max_reply_bytes: 8 << 20,
            allow_copy: false,
            allow_remote_shutdown: true,
            io_deadline: Duration::from_secs(10),
        }
    }
}

/// Counters the server reports after shutdown (and the fuzz suite
/// asserts on — `panics_caught` must be zero).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    pub connections: u64,
    pub queries: u64,
    pub query_errors: u64,
    pub busy_rejections: u64,
    pub protocol_errors: u64,
    /// Connection handlers that panicked. The server survives them,
    /// but any nonzero count is a bug: the no-panic sweep exists so
    /// statement strings can never reach a panic.
    pub panics_caught: u64,
    /// Transient `accept()` failures the listener retried past
    /// (EMFILE, aborted handshakes). The server never exits on them.
    pub accept_errors: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    queries: AtomicU64,
    query_errors: AtomicU64,
    busy_rejections: AtomicU64,
    protocol_errors: AtomicU64,
    panics_caught: AtomicU64,
    accept_errors: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            query_errors: self.query_errors.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            accept_errors: self.accept_errors.load(Ordering::Relaxed),
        }
    }
}

/// Requests the server stop accepting and drain; cheap to clone and
/// safe to trigger from any thread (including a signal watcher).
#[derive(Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    cancels: Arc<Mutex<Vec<Arc<AtomicBool>>>>,
}

impl ServerHandle {
    /// Begin a graceful shutdown: stop accepting, interrupt in-flight
    /// queries, drain, checkpoint.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Interrupt long-running statements so the drain is prompt.
        let cancels = self
            .cancels
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for c in cancels.iter() {
            c.store(true, Ordering::Relaxed);
        }
    }

    /// Has a shutdown been requested?
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    engine: Engine,
    listener: TcpListener,
    cfg: ServerConfig,
    handle: ServerHandle,
    counters: Arc<Counters>,
}

impl Server {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(
        engine: Engine,
        addr: &str,
        cfg: ServerConfig,
    ) -> Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            engine,
            listener,
            cfg,
            handle: ServerHandle {
                shutdown: Arc::new(AtomicBool::new(false)),
                cancels: Arc::new(Mutex::new(Vec::new())),
            },
            counters: Arc::new(Counters::default()),
        })
    }

    /// The address actually bound (resolves ephemeral ports).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// A handle that can trigger shutdown from another thread.
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// The engine behind the server (e.g. for lock-stats assertions).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Accept and serve until shutdown, then drain, checkpoint, and
    /// return the final counters. The checkpoint failure mode is
    /// surfaced — callers exit nonzero on it.
    pub fn run(self) -> Result<ServerStats> {
        let Server {
            engine,
            listener,
            cfg,
            handle,
            counters,
        } = self;
        let active = Arc::new(AtomicUsize::new(0));
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        // Consecutive accept() failures, for exponential backoff: a
        // storm (EMFILE while every descriptor is held by clients)
        // must neither spin the CPU nor kill the listener.
        let mut accept_strikes: u32 = 0;

        while !handle.is_shutting_down() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    accept_strikes = 0;
                    counters.connections.fetch_add(1, Ordering::Relaxed);
                    // Admission control: reject, never queue.
                    let admitted = {
                        let prev = active.fetch_add(1, Ordering::AcqRel);
                        if prev >= cfg.max_connections {
                            active.fetch_sub(1, Ordering::AcqRel);
                            false
                        } else {
                            true
                        }
                    };
                    if !admitted {
                        counters
                            .busy_rejections
                            .fetch_add(1, Ordering::Relaxed);
                        reject_busy(stream, &cfg);
                        continue;
                    }
                    let eng = engine.clone();
                    let conn_cfg = cfg.clone();
                    let conn_handle = handle.clone();
                    let conn_counters = counters.clone();
                    let conn_active = active.clone();
                    // An explicit (generous) stack: expression nesting
                    // is parser-limited, but debug frames are fat.
                    let spawned = std::thread::Builder::new()
                        .name("tdbms-conn".into())
                        .stack_size(8 << 20)
                        .spawn(move || {
                            let result = std::panic::catch_unwind(
                                AssertUnwindSafe(|| {
                                    serve_connection(
                                        stream,
                                        eng,
                                        &conn_cfg,
                                        &conn_handle,
                                        &conn_counters,
                                    )
                                }),
                            );
                            if result.is_err() {
                                conn_counters
                                    .panics_caught
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                            conn_active.fetch_sub(1, Ordering::AcqRel);
                        });
                    match spawned {
                        Ok(w) => workers.push(w),
                        Err(_) => {
                            // Thread spawn failed (resource pressure):
                            // treat as busy.
                            active.fetch_sub(1, Ordering::AcqRel);
                            counters
                                .busy_rejections
                                .fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // Reap finished workers so the vec stays bounded.
                    workers.retain(|w| !w.is_finished());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    // Accept failures are transient (EMFILE, aborted
                    // handshakes); don't take the server down. Retry
                    // with capped exponential backoff so a sustained
                    // storm doesn't spin, and count every strike so
                    // operators can see them in `Stats`.
                    let _ = e;
                    counters.accept_errors.fetch_add(1, Ordering::Relaxed);
                    accept_strikes = accept_strikes.saturating_add(1);
                    let backoff = Duration::from_millis(
                        5u64 << accept_strikes.min(6),
                    );
                    std::thread::sleep(backoff);
                }
            }
        }

        // Drain: handlers observe the shutdown flag (their in-flight
        // statements were canceled by the handle) and exit.
        for w in workers {
            let _ = w.join();
        }

        // Clean checkpoint so the database audits clean after exit.
        engine.try_with_write(|db| db.checkpoint())??;
        Ok(counters.snapshot())
    }
}

/// Send `Busy` (best effort, bounded) and drop the connection.
fn reject_busy(mut stream: TcpStream, cfg: &ServerConfig) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let payload =
        encode_response(&Response::Error(Error::Busy), cfg.max_reply_bytes);
    let _ = write_frame(&mut stream, &payload);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// What one blocking read attempt produced.
enum Frame {
    Payload(Vec<u8>),
    /// Clean close at a frame boundary.
    Eof,
    /// Read timeout while *waiting* for a frame — poll shutdown and
    /// retry.
    Idle,
    /// The peer violated framing; the connection is dropped.
    Broken(Error),
}

/// Read one frame with a poll-friendly timeout. The stream has a short
/// read timeout; between frames a timeout just means "idle". Once the
/// first header byte arrives the frame must complete within
/// `frame_deadline`, so a stalled or mid-frame-disconnected peer cannot
/// wedge the drain.
fn read_frame_poll(
    stream: &mut TcpStream,
    frame_deadline: Duration,
) -> Frame {
    let mut header = [0u8; 4];
    let mut got = 0usize;
    let mut started: Option<Instant> = None;
    loop {
        if let Some(t0) = started {
            if t0.elapsed() > frame_deadline {
                return Frame::Broken(Error::Protocol(
                    "frame stalled mid-transfer".into(),
                ));
            }
        }
        match std::io::Read::read(stream, &mut header[got..]) {
            Ok(0) if got == 0 => return Frame::Eof,
            Ok(0) => {
                return Frame::Broken(Error::Protocol(
                    "connection closed mid-frame header".into(),
                ))
            }
            Ok(n) => {
                got += n;
                started.get_or_insert_with(Instant::now);
                if got == 4 {
                    break;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                ) =>
            {
                if got == 0 {
                    return Frame::Idle;
                }
                // Mid-header stall: keep waiting up to the deadline.
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Frame::Broken(Error::Io(e.to_string())),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_REQUEST_FRAME {
        return Frame::Broken(Error::Protocol(format!(
            "frame length {len} exceeds limit {MAX_REQUEST_FRAME}"
        )));
    }
    let mut payload = vec![0u8; len];
    let mut got = 0usize;
    let t0 = Instant::now();
    while got < len {
        if t0.elapsed() > frame_deadline {
            return Frame::Broken(Error::Protocol(
                "frame stalled mid-transfer".into(),
            ));
        }
        match std::io::Read::read(stream, &mut payload[got..]) {
            Ok(0) => {
                return Frame::Broken(Error::Protocol(
                    "connection closed mid-frame".into(),
                ))
            }
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Frame::Broken(Error::Io(e.to_string())),
        }
    }
    Frame::Payload(payload)
}

fn send(
    stream: &mut TcpStream,
    resp: &Response,
    cfg: &ServerConfig,
) -> bool {
    let payload = encode_response(resp, cfg.max_reply_bytes);
    write_frame(stream, &payload).is_ok() && stream.flush().is_ok()
}

fn serve_connection(
    mut stream: TcpStream,
    engine: Engine,
    cfg: &ServerConfig,
    handle: &ServerHandle,
    counters: &Counters,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_write_timeout(Some(cfg.io_deadline));

    let mut session = engine.session();
    let cancel = session.cancel_handle();
    {
        let mut cancels = handle
            .cancels
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        cancels.push(cancel.clone());
    }

    loop {
        if handle.is_shutting_down() {
            let _ = send(
                &mut stream,
                &Response::Error(Error::ShuttingDown),
                cfg,
            );
            break;
        }
        let payload = match read_frame_poll(&mut stream, cfg.io_deadline) {
            Frame::Payload(p) => p,
            Frame::Idle => continue,
            Frame::Eof => break,
            Frame::Broken(e) => {
                counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = send(&mut stream, &Response::Error(e), cfg);
                break;
            }
        };
        let req = match decode_request(&payload) {
            Ok(r) => r,
            Err(e) => {
                // A peer that violates framing is not trustworthy
                // enough to keep talking to.
                counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = send(&mut stream, &Response::Error(e), cfg);
                break;
            }
        };
        match req {
            Request::Ping => {
                if !send(&mut stream, &Response::Pong, cfg) {
                    break;
                }
            }
            Request::Stats => {
                // An unusable engine (poisoned) also reports degraded:
                // the flag means "writes are not being served". Probe
                // it before snapshotting the lock counters — the probe
                // itself takes one shared lock, and the counters must
                // match the engine's own view at reply time.
                // Reorg and page-filter counters ride the same probe;
                // a poisoned engine reports degraded=true and zeroed
                // counters rather than failing the whole reply.
                let (
                    degraded,
                    reorg,
                    bloom_hits,
                    bloom_skips,
                    readahead_pages,
                ) = engine
                    .try_with_read(|db| {
                        let io = db.io_stats();
                        (
                            db.is_degraded(),
                            db.reorg_stats(),
                            io.bloom_hits(),
                            io.bloom_skips(),
                            io.readahead_pages(),
                        )
                    })
                    .unwrap_or((true, Default::default(), 0, 0, 0));
                let locks = engine.lock_stats();
                let (plan_hits, plan_misses) = engine.plan_cache_stats();
                let resp = Response::Stats(StatsReply {
                    shared: locks.shared,
                    exclusive: locks.exclusive,
                    snapshot_reads: locks.snapshot_reads,
                    plan_hits,
                    plan_misses,
                    degraded,
                    panics_caught: counters
                        .panics_caught
                        .load(Ordering::Relaxed),
                    accept_errors: counters
                        .accept_errors
                        .load(Ordering::Relaxed),
                    reorg_runs: reorg.runs,
                    rows_migrated: reorg.rows_migrated,
                    bloom_hits,
                    bloom_skips,
                    readahead_pages,
                });
                if !send(&mut stream, &resp, cfg) {
                    break;
                }
            }
            Request::Shutdown => {
                if cfg.allow_remote_shutdown {
                    handle.shutdown();
                    let _ = send(&mut stream, &Response::Bye, cfg);
                } else {
                    let _ = send(
                        &mut stream,
                        &Response::Error(Error::NotApplicable(
                            "remote shutdown is disabled".into(),
                        )),
                        cfg,
                    );
                }
                break;
            }
            Request::Query {
                stmt,
                timeout_ms,
                max_rows,
            } => {
                counters.queries.fetch_add(1, Ordering::Relaxed);
                // Clients may tighten the server limits, never loosen.
                let timeout = if timeout_ms == 0 {
                    cfg.query_timeout
                } else {
                    cfg.query_timeout
                        .min(Duration::from_millis(timeout_ms as u64))
                };
                let rows = if max_rows == 0 {
                    cfg.max_rows
                } else {
                    cfg.max_rows.min(max_rows as u64)
                };
                session.set_limits(SessionLimits {
                    timeout: Some(timeout),
                    max_rows: Some(rows),
                    deny_copy: !cfg.allow_copy,
                });
                let t0 = Instant::now();
                let resp = match session.execute(&stmt) {
                    Ok(out) => Response::Rows(Reply::from_output(
                        &out,
                        t0.elapsed().as_micros() as u64,
                    )),
                    Err(e) => {
                        counters
                            .query_errors
                            .fetch_add(1, Ordering::Relaxed);
                        Response::Error(e)
                    }
                };
                if !send(&mut stream, &resp, cfg) {
                    break;
                }
            }
        }
    }

    // Unregister this session's cancel flag.
    let mut cancels = handle
        .cancels
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    cancels.retain(|c| !Arc::ptr_eq(c, &cancel));
}
