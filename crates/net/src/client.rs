//! A thin blocking client for the tdbms wire protocol.
//!
//! Used by tests and the bench driver; errors sent by the server come
//! back as the same typed [`Error`](tdbms_kernel::Error) values the
//! embedded API produces, so callers can match on variants either way.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use tdbms_kernel::{Error, Prng, Result};

use crate::wire::{
    decode_response, encode_request, read_frame, write_frame, Reply,
    Request, Response, StatsReply, MAX_RESPONSE_FRAME,
};

/// One connection to a running `tdbms-server`.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to `addr` (e.g. `"127.0.0.1:4477"`).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // A dead or wedged server should fail the call, not hang the
        // caller forever.
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        Ok(Client { stream })
    }

    /// Execute one statement with the server's default limits.
    pub fn query(&mut self, stmt: &str) -> Result<Reply> {
        self.query_with(stmt, 0, 0)
    }

    /// Execute one statement, tightening the per-query limits. Zero
    /// means "server default"; nonzero values are clamped by the
    /// server to its own caps (clients can tighten, never loosen).
    pub fn query_with(
        &mut self,
        stmt: &str,
        timeout_ms: u32,
        max_rows: u32,
    ) -> Result<Reply> {
        let resp = self.round_trip(&Request::Query {
            stmt: stmt.to_string(),
            timeout_ms,
            max_rows,
        })?;
        match resp {
            Response::Rows(reply) => Ok(reply),
            Response::Error(e) => Err(e),
            other => Err(Error::Protocol(format!(
                "unexpected response to query: {other:?}"
            ))),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<()> {
        match self.round_trip(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error(e) => Err(e),
            other => Err(Error::Protocol(format!(
                "unexpected response to ping: {other:?}"
            ))),
        }
    }

    /// Fetch the engine's lock and plan-cache counters.
    pub fn stats(&mut self) -> Result<StatsReply> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            Response::Error(e) => Err(e),
            other => Err(Error::Protocol(format!(
                "unexpected response to stats: {other:?}"
            ))),
        }
    }

    /// Ask the server to shut down gracefully. Returns `Ok(())` once
    /// the server acknowledges; it then drains and checkpoints.
    pub fn shutdown_server(&mut self) -> Result<()> {
        match self.round_trip(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            Response::Error(e) => Err(e),
            other => Err(Error::Protocol(format!(
                "unexpected response to shutdown: {other:?}"
            ))),
        }
    }

    fn round_trip(&mut self, req: &Request) -> Result<Response> {
        write_frame(&mut self.stream, &encode_request(req))?;
        match read_frame(&mut self.stream, MAX_RESPONSE_FRAME)? {
            Some(payload) => decode_response(&payload),
            None => Err(Error::Protocol(
                "server closed the connection before replying".into(),
            )),
        }
    }
}

/// Retry and backoff knobs of a [`ReconnectClient`].
#[derive(Debug, Clone)]
pub struct RetryConfig {
    /// Total attempts per request, first try included.
    pub max_attempts: u32,
    /// First retry's backoff; doubles per further retry.
    pub base_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
    /// Seed of the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_attempts: 6,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            seed: 0x7db5,
        }
    }
}

/// A [`Client`] that survives a flaky server: on connection loss it
/// reconnects with capped exponential backoff plus seeded jitter and
/// retries the request — but **only** when the retry cannot double-
/// apply work:
///
/// - connect failures and typed [`Error::Busy`] rejections happened
///   before the statement executed, so every request kind retries;
/// - a connection lost *mid-round-trip* retries only idempotent
///   requests (`Ping`, `Stats`, plain retrieves). A write's outcome is
///   unknown — the commit may be durable with only the ack lost — so
///   the caller gets a typed [`Error::RetryUnsafe`] and decides.
///
/// Server-side degraded mode ([`Error::Degraded`]) passes through
/// untouched: the engine is alive and refusing writes deliberately;
/// hammering it with retries would not help.
pub struct ReconnectClient {
    addr: String,
    cfg: RetryConfig,
    conn: Option<Client>,
    prng: Prng,
    reconnects: u64,
    retries: u64,
}

impl ReconnectClient {
    /// Lazily connecting client for `addr`; the first request dials.
    pub fn new(addr: impl Into<String>, cfg: RetryConfig) -> Self {
        let prng = Prng::seed_from_u64(cfg.seed);
        ReconnectClient {
            addr: addr.into(),
            cfg,
            conn: None,
            prng,
            reconnects: 0,
            retries: 0,
        }
    }

    /// Connections established (including the first).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Requests that needed at least one retry.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Drop the current connection (if any); the next request dials
    /// again. The chaos harness calls this to simulate a network blip
    /// between requests.
    pub fn drop_connection(&mut self) {
        self.conn = None;
    }

    /// Execute one statement (see [`Client::query`]). Only statements
    /// classified idempotent are retried over a lost connection.
    pub fn query(&mut self, stmt: &str) -> Result<Reply> {
        let req = Request::Query {
            stmt: stmt.to_string(),
            timeout_ms: 0,
            max_rows: 0,
        };
        match self.run(&req, idempotent_statement(stmt))? {
            Response::Rows(reply) => Ok(reply),
            Response::Error(e) => Err(e),
            other => Err(Error::Protocol(format!(
                "unexpected response to query: {other:?}"
            ))),
        }
    }

    /// Liveness check, retried across reconnects.
    pub fn ping(&mut self) -> Result<()> {
        match self.run(&Request::Ping, true)? {
            Response::Pong => Ok(()),
            Response::Error(e) => Err(e),
            other => Err(Error::Protocol(format!(
                "unexpected response to ping: {other:?}"
            ))),
        }
    }

    /// Engine counters, retried across reconnects.
    pub fn stats(&mut self) -> Result<StatsReply> {
        match self.run(&Request::Stats, true)? {
            Response::Stats(s) => Ok(s),
            Response::Error(e) => Err(e),
            other => Err(Error::Protocol(format!(
                "unexpected response to stats: {other:?}"
            ))),
        }
    }

    /// Sleep the capped exponential backoff with full jitter in
    /// `[cap/2, cap]` (seeded, so chaos runs are reproducible).
    fn backoff(&mut self, attempt: u32) {
        let exp = self
            .cfg
            .base_backoff
            .saturating_mul(1u32 << attempt.min(10));
        let cap = exp.min(self.cfg.max_backoff).as_nanos() as u64;
        let jittered = cap / 2 + self.prng.next_u64() % (cap / 2 + 1);
        std::thread::sleep(Duration::from_nanos(jittered));
    }

    fn run(&mut self, req: &Request, idempotent: bool) -> Result<Response> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            if self.conn.is_none() {
                match Client::connect(&self.addr) {
                    Ok(c) => {
                        self.conn = Some(c);
                        self.reconnects += 1;
                    }
                    Err(e) => {
                        // Nothing was sent: a failed dial is retryable
                        // for every request kind.
                        if attempt >= self.cfg.max_attempts {
                            return Err(e);
                        }
                        self.retries += 1;
                        self.backoff(attempt);
                        continue;
                    }
                }
            }
            let conn = self.conn.as_mut().expect("connected above");
            match conn.round_trip(req) {
                Ok(Response::Error(Error::Busy))
                    if attempt < self.cfg.max_attempts =>
                {
                    // Admission control rejected the request before it
                    // executed: safe to retry, writes included.
                    self.retries += 1;
                    self.backoff(attempt);
                }
                Ok(resp) => return Ok(resp),
                Err(e) if is_transport(&e) => {
                    self.conn = None;
                    if !idempotent {
                        return Err(Error::RetryUnsafe(format!(
                            "connection lost mid-request; the write's \
                             outcome is unknown: {e}"
                        )));
                    }
                    if attempt >= self.cfg.max_attempts {
                        return Err(e);
                    }
                    self.retries += 1;
                    self.backoff(attempt);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// A transport-layer failure (as opposed to a typed error the server
/// sent): the connection is unusable and the request's fate unknown.
fn is_transport(e: &Error) -> bool {
    matches!(e, Error::Io(_) | Error::Protocol(_))
}

/// Is a lost connection safe to retry for this statement? Plain
/// retrieves, `explain`, and `range` declarations re-execute without
/// side effects; everything else (including `retrieve into`) mutates.
/// Unparseable text is conservatively treated as mutating.
fn idempotent_statement(stmt: &str) -> bool {
    let norm = stmt.trim().to_ascii_lowercase();
    let mut words = norm.split_whitespace();
    match words.next() {
        Some("retrieve") => words.next() != Some("into"),
        Some("explain") | Some("range") => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statement_idempotence_classification() {
        assert!(idempotent_statement("retrieve (e.name) where e.id = 1"));
        assert!(idempotent_statement("  RETRIEVE (e.all)"));
        assert!(idempotent_statement("explain (e.all)"));
        assert!(idempotent_statement("range of e is employees"));
        assert!(!idempotent_statement("retrieve into t (e.all)"));
        assert!(!idempotent_statement("append to r (id = 1)"));
        assert!(!idempotent_statement("delete e where e.id = 1"));
        assert!(!idempotent_statement("destroy r"));
        assert!(!idempotent_statement(""));
    }
}
