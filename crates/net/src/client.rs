//! A thin blocking client for the tdbms wire protocol.
//!
//! Used by tests and the bench driver; errors sent by the server come
//! back as the same typed [`Error`](tdbms_kernel::Error) values the
//! embedded API produces, so callers can match on variants either way.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use tdbms_kernel::{Error, Result};

use crate::wire::{
    decode_response, encode_request, read_frame, write_frame, Reply,
    Request, Response, StatsReply, MAX_RESPONSE_FRAME,
};

/// One connection to a running `tdbms-server`.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to `addr` (e.g. `"127.0.0.1:4477"`).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // A dead or wedged server should fail the call, not hang the
        // caller forever.
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        Ok(Client { stream })
    }

    /// Execute one statement with the server's default limits.
    pub fn query(&mut self, stmt: &str) -> Result<Reply> {
        self.query_with(stmt, 0, 0)
    }

    /// Execute one statement, tightening the per-query limits. Zero
    /// means "server default"; nonzero values are clamped by the
    /// server to its own caps (clients can tighten, never loosen).
    pub fn query_with(
        &mut self,
        stmt: &str,
        timeout_ms: u32,
        max_rows: u32,
    ) -> Result<Reply> {
        let resp = self.round_trip(&Request::Query {
            stmt: stmt.to_string(),
            timeout_ms,
            max_rows,
        })?;
        match resp {
            Response::Rows(reply) => Ok(reply),
            Response::Error(e) => Err(e),
            other => Err(Error::Protocol(format!(
                "unexpected response to query: {other:?}"
            ))),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<()> {
        match self.round_trip(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error(e) => Err(e),
            other => Err(Error::Protocol(format!(
                "unexpected response to ping: {other:?}"
            ))),
        }
    }

    /// Fetch the engine's lock and plan-cache counters.
    pub fn stats(&mut self) -> Result<StatsReply> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            Response::Error(e) => Err(e),
            other => Err(Error::Protocol(format!(
                "unexpected response to stats: {other:?}"
            ))),
        }
    }

    /// Ask the server to shut down gracefully. Returns `Ok(())` once
    /// the server acknowledges; it then drains and checkpoints.
    pub fn shutdown_server(&mut self) -> Result<()> {
        match self.round_trip(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            Response::Error(e) => Err(e),
            other => Err(Error::Protocol(format!(
                "unexpected response to shutdown: {other:?}"
            ))),
        }
    }

    fn round_trip(&mut self, req: &Request) -> Result<Response> {
        write_frame(&mut self.stream, &encode_request(req))?;
        match read_frame(&mut self.stream, MAX_RESPONSE_FRAME)? {
            Some(payload) => decode_response(&payload),
            None => Err(Error::Protocol(
                "server closed the connection before replying".into(),
            )),
        }
    }
}
