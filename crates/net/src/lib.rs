//! TQuel over the wire.
//!
//! This crate turns the embedded engine into a network service:
//!
//! - [`wire`] — the length-prefixed binary protocol: requests carry a
//!   statement string plus per-query limit options; responses carry
//!   typed rows, typed errors (the same
//!   [`Error`](tdbms_kernel::Error) variants the embedded API
//!   returns), or control acknowledgements.
//! - [`server`] — a blocking thread-per-connection TCP server that
//!   owns one [`Engine`](tdbms_core::Engine) and opens a session per
//!   connection, with admission control, per-query guardrails, and
//!   graceful drain-and-checkpoint shutdown.
//! - [`client`] — the thin blocking client used by tests and the
//!   bench driver.
//!
//! The hard promise: **no byte stream a client can send may panic the
//! server.** Framing violations become typed `Protocol` errors (and a
//! dropped connection); hostile statements become ordinary query
//! errors; and every connection handler additionally runs under
//! `catch_unwind` as a last line of defense, with a counter the test
//! suite asserts stays at zero.

pub mod client;
pub mod server;
pub mod wire;

pub use client::{Client, ReconnectClient, RetryConfig};
pub use server::{Server, ServerConfig, ServerHandle, ServerStats};
pub use wire::{Reply, Request, Response, StatsReply};
