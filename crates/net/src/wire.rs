//! The length-prefixed binary wire protocol.
//!
//! Every message is one *frame*: a little-endian `u32` payload length
//! followed by that many payload bytes. The first payload byte is an
//! opcode (requests) or a response tag; the rest is the fields of that
//! message, encoded with the fixed-width little-endian primitives below
//! (strings are a `u32` length + UTF-8 bytes).
//!
//! The decoder never trusts the peer: every read is bounds-checked, every
//! length is capped, unknown tags are typed [`Error::Protocol`] failures.
//! Nothing in this module panics on any input byte sequence — that is
//! the server's no-panic contract, and the protocol fuzz suite holds it.

use tdbms_core::QueryStats;
use tdbms_kernel::{Domain, Error, Result, TimeVal, Value};

/// Largest frame a server accepts from a client (statement text plus
/// options comfortably fits; anything bigger is hostile or a bug).
pub const MAX_REQUEST_FRAME: usize = 1 << 20;

/// Largest frame a client accepts from a server. Result sets are bounded
/// by the server's reply-byte limit, which callers keep below this.
pub const MAX_RESPONSE_FRAME: usize = 64 << 20;

/// Protocol version byte carried in every request.
pub const PROTOCOL_VERSION: u8 = 1;

// Request opcodes.
const OP_QUERY: u8 = 1;
const OP_PING: u8 = 2;
const OP_SHUTDOWN: u8 = 3;
const OP_STATS: u8 = 4;

// Response tags.
const RESP_ROWS: u8 = 1;
const RESP_ERROR: u8 = 2;
const RESP_PONG: u8 = 3;
const RESP_BYE: u8 = 4;
const RESP_STATS: u8 = 5;

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Execute a TQuel program. `timeout_ms`/`max_rows` of 0 mean "use
    /// the server's defaults"; nonzero values are clamped to the
    /// server's caps, never above them.
    Query {
        stmt: String,
        timeout_ms: u32,
        max_rows: u32,
    },
    /// Liveness probe.
    Ping,
    /// Ask the server to begin a graceful shutdown.
    Shutdown,
    /// Ask for the engine's lock and plan-cache counters.
    Stats,
}

/// Engine-wide counters a server reports to [`Request::Stats`]: the
/// commit-lock/snapshot split plus the statement-cache hit ratio.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// Shared (read-side) commit-lock acquisitions.
    pub shared: u64,
    /// Exclusive (write-side) commit-lock acquisitions.
    pub exclusive: u64,
    /// Retrieves served lock-free from the published read view.
    pub snapshot_reads: u64,
    /// Statement-cache hits (parse skipped).
    pub plan_hits: u64,
    /// Statement-cache misses (text parsed and cached).
    pub plan_misses: u64,
    /// True while the engine is in read-only degraded mode (disk full
    /// or failed fsync); writes re-arm automatically on recovery.
    pub degraded: bool,
    /// Worker panics the server caught and converted into errors.
    pub panics_caught: u64,
    /// Transient `accept()` failures the listener survived.
    pub accept_errors: u64,
    /// Completed reorganization passes that migrated at least one row.
    pub reorg_runs: u64,
    /// Versions migrated to clustered history sidecars, lifetime.
    pub rows_migrated: u64,
    /// Overflow-chain walks a bloom filter proved necessary.
    pub bloom_hits: u64,
    /// Overflow-chain walks a bloom filter skipped outright.
    pub bloom_skips: u64,
    /// Pages prefetched by batched readahead.
    pub readahead_pages: u64,
}

/// Result-set payload of a successful query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Reply {
    pub columns: Vec<(String, Domain)>,
    pub rows: Vec<Vec<Value>>,
    /// Rows affected (DML) or produced (retrieve).
    pub affected: u64,
    /// The paper's input/output page costs for the statement.
    pub input_pages: u64,
    pub output_pages: u64,
    /// Server-side wall-clock execution time.
    pub elapsed_us: u64,
}

impl Reply {
    /// Build from an executed statement's output.
    pub fn from_output(
        out: &tdbms_core::ExecOutput,
        elapsed_us: u64,
    ) -> Self {
        Reply {
            columns: out.columns.clone(),
            rows: out.rows().to_vec(),
            affected: out.affected as u64,
            input_pages: out.stats.input_pages,
            output_pages: out.stats.output_pages,
            elapsed_us,
        }
    }

    /// The stats shape core callers expect.
    pub fn stats(&self) -> QueryStats {
        QueryStats {
            input_pages: self.input_pages,
            output_pages: self.output_pages,
            ..Default::default()
        }
    }
}

/// One server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Rows(Reply),
    Error(Error),
    Pong,
    /// Acknowledges a shutdown request; the connection closes after.
    Bye,
    /// Engine counters, answering [`Request::Stats`].
    Stats(StatsReply),
}

// ---- primitive encoding ------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Bounds-checked cursor over a received payload.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| {
            Error::Protocol("length overflow in payload".into())
        })?;
        if end > self.buf.len() {
            return Err(Error::Protocol(format!(
                "truncated payload: wanted {n} bytes at offset {}, \
                 frame has {}",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    pub fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        if len > self.buf.len() {
            return Err(Error::Protocol(format!(
                "string length {len} exceeds frame size {}",
                self.buf.len()
            )));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| {
            Error::Protocol("string field is not UTF-8".into())
        })
    }
}

// ---- domains and values ------------------------------------------------

fn put_domain(buf: &mut Vec<u8>, d: Domain) {
    match d {
        Domain::I1 => put_u8(buf, 0),
        Domain::I2 => put_u8(buf, 1),
        Domain::I4 => put_u8(buf, 2),
        Domain::F4 => put_u8(buf, 3),
        Domain::F8 => put_u8(buf, 4),
        Domain::Char(w) => {
            put_u8(buf, 5);
            put_u16(buf, w);
        }
        Domain::Time => put_u8(buf, 6),
    }
}

fn get_domain(c: &mut Cursor<'_>) -> Result<Domain> {
    Ok(match c.u8()? {
        0 => Domain::I1,
        1 => Domain::I2,
        2 => Domain::I4,
        3 => Domain::F4,
        4 => Domain::F8,
        5 => Domain::Char(c.u16()?),
        6 => Domain::Time,
        t => {
            return Err(Error::Protocol(format!("unknown domain tag {t}")))
        }
    })
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            put_u8(buf, 0);
            put_u64(buf, *i as u64);
        }
        Value::Float(f) => {
            put_u8(buf, 1);
            put_u64(buf, f.to_bits());
        }
        Value::Str(s) => {
            put_u8(buf, 2);
            put_str(buf, s);
        }
        Value::Time(t) => {
            put_u8(buf, 3);
            put_u32(buf, t.as_secs());
        }
    }
}

fn get_value(c: &mut Cursor<'_>) -> Result<Value> {
    Ok(match c.u8()? {
        0 => Value::Int(c.u64()? as i64),
        1 => Value::Float(f64::from_bits(c.u64()?)),
        2 => Value::Str(c.str()?),
        3 => Value::Time(TimeVal(c.u32()?)),
        t => return Err(Error::Protocol(format!("unknown value tag {t}"))),
    })
}

// ---- typed errors over the wire ----------------------------------------

/// `(code, a, b, msg)` quadruple that round-trips every [`Error`]
/// variant. `a`/`b` carry the variant's numeric fields.
fn error_parts(e: &Error) -> (u16, u64, u64, String) {
    match e {
        Error::BadTime(s) => (1, 0, 0, s.clone()),
        Error::BadValue(s) => (2, 0, 0, s.clone()),
        Error::Lex { line, col, msg } => {
            (3, *line as u64, *col as u64, msg.clone())
        }
        Error::Parse { line, col, msg } => {
            (4, *line as u64, *col as u64, msg.clone())
        }
        Error::Semantic(s) => (5, 0, 0, s.clone()),
        Error::NoSuchRelation(s) => (6, 0, 0, s.clone()),
        Error::DuplicateRelation(s) => (7, 0, 0, s.clone()),
        Error::NoSuchAttribute(s) => (8, 0, 0, s.clone()),
        Error::NoSuchPage(p) => (9, *p as u64, 0, String::new()),
        Error::RowSize { expected, got } => {
            (10, *expected as u64, *got as u64, String::new())
        }
        Error::NotApplicable(s) => (11, 0, 0, s.clone()),
        Error::Io(s) => (12, 0, 0, s.clone()),
        Error::Corruption { file, page, detail } => (
            13,
            file.map(|f| f as u64 + 1).unwrap_or(0),
            page.map(|p| p as u64 + 1).unwrap_or(0),
            detail.clone(),
        ),
        Error::Poisoned => (14, 0, 0, String::new()),
        Error::Internal(s) => (15, 0, 0, s.clone()),
        Error::Timeout { ms } => (16, *ms, 0, String::new()),
        Error::LimitExceeded { what, limit } => {
            (17, *limit, 0, what.clone())
        }
        Error::Busy => (18, 0, 0, String::new()),
        Error::Canceled => (19, 0, 0, String::new()),
        Error::ShuttingDown => (20, 0, 0, String::new()),
        Error::Protocol(s) => (21, 0, 0, s.clone()),
        Error::Degraded { reason } => (22, 0, 0, reason.clone()),
        Error::RetryUnsafe(s) => (23, 0, 0, s.clone()),
    }
}

fn error_from_parts(code: u16, a: u64, b: u64, msg: String) -> Error {
    match code {
        1 => Error::BadTime(msg),
        2 => Error::BadValue(msg),
        3 => Error::Lex {
            line: a as u32,
            col: b as u32,
            msg,
        },
        4 => Error::Parse {
            line: a as u32,
            col: b as u32,
            msg,
        },
        5 => Error::Semantic(msg),
        6 => Error::NoSuchRelation(msg),
        7 => Error::DuplicateRelation(msg),
        8 => Error::NoSuchAttribute(msg),
        9 => Error::NoSuchPage(a as u32),
        10 => Error::RowSize {
            expected: a as usize,
            got: b as usize,
        },
        11 => Error::NotApplicable(msg),
        12 => Error::Io(msg),
        13 => Error::Corruption {
            file: a.checked_sub(1).map(|f| f as u32),
            page: b.checked_sub(1).map(|p| p as u32),
            detail: msg,
        },
        14 => Error::Poisoned,
        15 => Error::Internal(msg),
        16 => Error::Timeout { ms: a },
        17 => Error::LimitExceeded {
            what: msg,
            limit: a,
        },
        18 => Error::Busy,
        19 => Error::Canceled,
        20 => Error::ShuttingDown,
        21 => Error::Protocol(msg),
        22 => Error::Degraded { reason: msg },
        23 => Error::RetryUnsafe(msg),
        other => {
            Error::Protocol(format!("unknown error code {other} ({msg})"))
        }
    }
}

// ---- messages ----------------------------------------------------------

/// Encode a request payload (without the frame length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    match req {
        Request::Query {
            stmt,
            timeout_ms,
            max_rows,
        } => {
            put_u8(&mut buf, OP_QUERY);
            put_u8(&mut buf, PROTOCOL_VERSION);
            put_u32(&mut buf, *timeout_ms);
            put_u32(&mut buf, *max_rows);
            put_str(&mut buf, stmt);
        }
        Request::Ping => {
            put_u8(&mut buf, OP_PING);
            put_u8(&mut buf, PROTOCOL_VERSION);
        }
        Request::Shutdown => {
            put_u8(&mut buf, OP_SHUTDOWN);
            put_u8(&mut buf, PROTOCOL_VERSION);
        }
        Request::Stats => {
            put_u8(&mut buf, OP_STATS);
            put_u8(&mut buf, PROTOCOL_VERSION);
        }
    }
    buf
}

/// Decode a request payload.
pub fn decode_request(payload: &[u8]) -> Result<Request> {
    let mut c = Cursor::new(payload);
    let op = c.u8()?;
    let version = c.u8()?;
    if version != PROTOCOL_VERSION {
        return Err(Error::Protocol(format!(
            "unsupported protocol version {version} (expected \
             {PROTOCOL_VERSION})"
        )));
    }
    let req = match op {
        OP_QUERY => {
            let timeout_ms = c.u32()?;
            let max_rows = c.u32()?;
            let stmt = c.str()?;
            Request::Query {
                stmt,
                timeout_ms,
                max_rows,
            }
        }
        OP_PING => Request::Ping,
        OP_SHUTDOWN => Request::Shutdown,
        OP_STATS => Request::Stats,
        other => {
            return Err(Error::Protocol(format!(
                "unknown request opcode {other}"
            )))
        }
    };
    if !c.is_empty() {
        return Err(Error::Protocol("trailing bytes after request".into()));
    }
    Ok(req)
}

/// Encode a response payload, enforcing `max_bytes` on the result-set
/// encoding: a reply that would exceed it is replaced by a typed
/// [`Error::LimitExceeded`] response so the frame itself stays bounded.
pub fn encode_response(resp: &Response, max_bytes: usize) -> Vec<u8> {
    let mut buf = Vec::new();
    match resp {
        Response::Rows(r) => {
            put_u8(&mut buf, RESP_ROWS);
            put_u64(&mut buf, r.affected);
            put_u64(&mut buf, r.input_pages);
            put_u64(&mut buf, r.output_pages);
            put_u64(&mut buf, r.elapsed_us);
            put_u16(&mut buf, r.columns.len() as u16);
            for (name, d) in &r.columns {
                put_str(&mut buf, name);
                put_domain(&mut buf, *d);
            }
            put_u32(&mut buf, r.rows.len() as u32);
            for row in &r.rows {
                for v in row {
                    put_value(&mut buf, v);
                }
                if buf.len() > max_bytes {
                    return encode_response(
                        &Response::Error(Error::LimitExceeded {
                            what: "reply bytes".into(),
                            limit: max_bytes as u64,
                        }),
                        max_bytes,
                    );
                }
            }
        }
        Response::Error(e) => {
            let (code, a, b, msg) = error_parts(e);
            put_u8(&mut buf, RESP_ERROR);
            put_u16(&mut buf, code);
            put_u64(&mut buf, a);
            put_u64(&mut buf, b);
            put_str(&mut buf, &msg);
        }
        Response::Pong => put_u8(&mut buf, RESP_PONG),
        Response::Bye => put_u8(&mut buf, RESP_BYE),
        Response::Stats(s) => {
            put_u8(&mut buf, RESP_STATS);
            put_u64(&mut buf, s.shared);
            put_u64(&mut buf, s.exclusive);
            put_u64(&mut buf, s.snapshot_reads);
            put_u64(&mut buf, s.plan_hits);
            put_u64(&mut buf, s.plan_misses);
            put_u8(&mut buf, s.degraded as u8);
            put_u64(&mut buf, s.panics_caught);
            put_u64(&mut buf, s.accept_errors);
            put_u64(&mut buf, s.reorg_runs);
            put_u64(&mut buf, s.rows_migrated);
            put_u64(&mut buf, s.bloom_hits);
            put_u64(&mut buf, s.bloom_skips);
            put_u64(&mut buf, s.readahead_pages);
        }
    }
    buf
}

/// Decode a response payload.
pub fn decode_response(payload: &[u8]) -> Result<Response> {
    let mut c = Cursor::new(payload);
    match c.u8()? {
        RESP_ROWS => {
            let affected = c.u64()?;
            let input_pages = c.u64()?;
            let output_pages = c.u64()?;
            let elapsed_us = c.u64()?;
            let ncols = c.u16()? as usize;
            let mut columns = Vec::with_capacity(ncols.min(1024));
            for _ in 0..ncols {
                let name = c.str()?;
                let d = get_domain(&mut c)?;
                columns.push((name, d));
            }
            let nrows = c.u32()? as usize;
            let mut rows = Vec::new();
            for _ in 0..nrows {
                let mut row = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    row.push(get_value(&mut c)?);
                }
                rows.push(row);
            }
            Ok(Response::Rows(Reply {
                columns,
                rows,
                affected,
                input_pages,
                output_pages,
                elapsed_us,
            }))
        }
        RESP_ERROR => {
            let code = c.u16()?;
            let a = c.u64()?;
            let b = c.u64()?;
            let msg = c.str()?;
            Ok(Response::Error(error_from_parts(code, a, b, msg)))
        }
        RESP_PONG => Ok(Response::Pong),
        RESP_BYE => Ok(Response::Bye),
        RESP_STATS => Ok(Response::Stats(StatsReply {
            shared: c.u64()?,
            exclusive: c.u64()?,
            snapshot_reads: c.u64()?,
            plan_hits: c.u64()?,
            plan_misses: c.u64()?,
            degraded: c.u8()? != 0,
            panics_caught: c.u64()?,
            accept_errors: c.u64()?,
            reorg_runs: c.u64()?,
            rows_migrated: c.u64()?,
            bloom_hits: c.u64()?,
            bloom_skips: c.u64()?,
            readahead_pages: c.u64()?,
        })),
        t => Err(Error::Protocol(format!("unknown response tag {t}"))),
    }
}

// ---- frame I/O ---------------------------------------------------------

/// Write one frame: length prefix + payload.
pub fn write_frame(
    w: &mut impl std::io::Write,
    payload: &[u8],
) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame (blocking). Returns `Ok(None)` on a clean EOF at a
/// frame boundary; mid-frame EOF and oversized lengths are
/// [`Error::Protocol`].
pub fn read_frame(
    r: &mut impl std::io::Read,
    max: usize,
) -> Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(Error::Protocol(
                    "connection closed mid-frame header".into(),
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                continue
            }
            Err(e) => return Err(Error::Io(e.to_string())),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max {
        return Err(Error::Protocol(format!(
            "frame length {len} exceeds limit {max}"
        )));
    }
    let mut payload = vec![0u8; len];
    let mut got = 0;
    while got < len {
        match r.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(Error::Protocol(
                    "connection closed mid-frame".into(),
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                continue
            }
            Err(e) => return Err(Error::Io(e.to_string())),
        }
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        for req in [
            Request::Query {
                stmt: "retrieve (h.id) where h.id = 500".into(),
                timeout_ms: 250,
                max_rows: 100,
            },
            Request::Ping,
            Request::Shutdown,
            Request::Stats,
        ] {
            let enc = encode_request(&req);
            assert_eq!(decode_request(&enc).unwrap(), req);
        }
    }

    #[test]
    fn response_roundtrip_with_every_value_kind() {
        let reply = Reply {
            columns: vec![
                ("id".into(), Domain::I4),
                ("name".into(), Domain::Char(20)),
                ("w".into(), Domain::F8),
                ("t".into(), Domain::Time),
            ],
            rows: vec![vec![
                Value::Int(-5),
                Value::Str("héllo".into()),
                Value::Float(1.5),
                Value::Time(TimeVal(12345)),
            ]],
            affected: 1,
            input_pages: 7,
            output_pages: 2,
            elapsed_us: 99,
        };
        let enc =
            encode_response(&Response::Rows(reply.clone()), usize::MAX);
        assert_eq!(decode_response(&enc).unwrap(), Response::Rows(reply));
    }

    #[test]
    fn stats_response_roundtrips() {
        let stats = StatsReply {
            shared: 3,
            exclusive: 17,
            snapshot_reads: 12_000,
            plan_hits: 990,
            plan_misses: 10,
            degraded: true,
            panics_caught: 2,
            accept_errors: 5,
            reorg_runs: 4,
            rows_migrated: 4096,
            bloom_hits: 77,
            bloom_skips: 1300,
            readahead_pages: 640,
        };
        let enc = encode_response(&Response::Stats(stats), usize::MAX);
        assert_eq!(decode_response(&enc).unwrap(), Response::Stats(stats));
        // Truncations must be typed errors, never panics.
        for cut in 0..enc.len() {
            let _ = decode_response(&enc[..cut]);
        }
    }

    #[test]
    fn every_error_variant_roundtrips() {
        let errors = vec![
            Error::BadTime("x".into()),
            Error::BadValue("y".into()),
            Error::Lex {
                line: 1,
                col: 2,
                msg: "bad".into(),
            },
            Error::Parse {
                line: 3,
                col: 4,
                msg: "worse".into(),
            },
            Error::Semantic("s".into()),
            Error::NoSuchRelation("r".into()),
            Error::DuplicateRelation("r".into()),
            Error::NoSuchAttribute("a".into()),
            Error::NoSuchPage(9),
            Error::RowSize {
                expected: 10,
                got: 20,
            },
            Error::NotApplicable("n".into()),
            Error::Io("io".into()),
            Error::Corruption {
                file: Some(0),
                page: None,
                detail: "d".into(),
            },
            Error::Poisoned,
            Error::Internal("i".into()),
            Error::Timeout { ms: 123 },
            Error::LimitExceeded {
                what: "rows".into(),
                limit: 10,
            },
            Error::Busy,
            Error::Canceled,
            Error::ShuttingDown,
            Error::Protocol("p".into()),
            Error::Degraded {
                reason: "disk full".into(),
            },
            Error::RetryUnsafe("write in flight".into()),
        ];
        for e in errors {
            let enc =
                encode_response(&Response::Error(e.clone()), usize::MAX);
            assert_eq!(decode_response(&enc).unwrap(), Response::Error(e));
        }
    }

    #[test]
    fn oversized_reply_degrades_to_limit_error() {
        let reply = Reply {
            columns: vec![("s".into(), Domain::Char(64))],
            rows: (0..1000)
                .map(|_| vec![Value::Str("x".repeat(64))])
                .collect(),
            affected: 1000,
            ..Default::default()
        };
        let enc = encode_response(&Response::Rows(reply), 1024);
        match decode_response(&enc).unwrap() {
            Response::Error(Error::LimitExceeded { what, .. }) => {
                assert_eq!(what, "reply bytes")
            }
            other => panic!("expected limit error, got {other:?}"),
        }
    }

    #[test]
    fn hostile_payloads_never_panic_the_decoder() {
        // Truncations of a valid request, garbage, and empty payloads.
        let valid = encode_request(&Request::Query {
            stmt: "retrieve (h.id)".into(),
            timeout_ms: 0,
            max_rows: 0,
        });
        for cut in 0..valid.len() {
            let _ = decode_request(&valid[..cut]);
        }
        let garbage: Vec<u8> =
            (0..257u32).map(|i| (i * 37) as u8).collect();
        let _ = decode_request(&garbage);
        let _ = decode_response(&garbage);
        assert!(decode_request(&[]).is_err());
        // A string length far past the frame must be a typed error.
        let mut evil = vec![OP_QUERY, PROTOCOL_VERSION];
        evil.extend_from_slice(&0u32.to_le_bytes());
        evil.extend_from_slice(&0u32.to_le_bytes());
        evil.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_request(&evil), Err(Error::Protocol(_))));
    }

    #[test]
    fn frame_reader_rejects_oversized_and_truncated() {
        use std::io::Cursor as IoCursor;
        // Clean EOF at the boundary.
        let mut empty = IoCursor::new(Vec::<u8>::new());
        assert_eq!(read_frame(&mut empty, 1024).unwrap(), None);
        // Oversized length prefix.
        let mut big = IoCursor::new((1u32 << 30).to_le_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut big, 1024),
            Err(Error::Protocol(_))
        ));
        // Truncated mid-header and mid-payload.
        let mut short = IoCursor::new(vec![1u8, 0]);
        assert!(matches!(
            read_frame(&mut short, 1024),
            Err(Error::Protocol(_))
        ));
        let mut body = Vec::new();
        body.extend_from_slice(&8u32.to_le_bytes());
        body.extend_from_slice(&[1, 2, 3]);
        let mut truncated = IoCursor::new(body);
        assert!(matches!(
            read_frame(&mut truncated, 1024),
            Err(Error::Protocol(_))
        ));
        // A whole frame roundtrips.
        let mut out = Vec::new();
        write_frame(&mut out, b"hello").unwrap();
        let mut rd = IoCursor::new(out);
        assert_eq!(
            read_frame(&mut rd, 1024).unwrap().as_deref(),
            Some(&b"hello"[..])
        );
    }
}
