//! `tdbms-server` — serve a database over TCP.
//!
//! ```text
//! tdbms-server DIR [--addr 127.0.0.1:4477] [--durable]
//!              [--max-conns N] [--timeout-ms N] [--max-rows N]
//!              [--max-reply-bytes N] [--allow-copy]
//!              [--no-remote-shutdown] [--checkpoint-every-bytes N]
//! tdbms-server --shutdown ADDR
//! ```
//!
//! The server prints `listening on <addr>` once it has bound (an
//! `--addr` port of 0 picks an ephemeral port — scripts parse this
//! line). SIGINT/SIGTERM or a wire `Shutdown` request trigger a
//! graceful drain: in-flight queries are interrupted, connections are
//! joined, a checkpoint is taken, and the process exits 0 with a
//! database that audits clean.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use tdbms_core::{Database, Engine};
use tdbms_net::{Client, Server, ServerConfig};

static SIGNALED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SIGNALED.store(true, Ordering::SeqCst);
}

/// Install a handler for SIGINT/SIGTERM without a libc dependency.
/// `signal(2)` is in every libc we link against; the handler only
/// touches an atomic, which is async-signal-safe.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> *const ();
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: tdbms-server DIR [--addr HOST:PORT] [--durable] \
         [--max-conns N] [--timeout-ms N] [--max-rows N] \
         [--max-reply-bytes N] [--allow-copy] [--no-remote-shutdown] \
         [--checkpoint-every-bytes N]\n\
         \x20      tdbms-server --shutdown HOST:PORT"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Client mode: ask a running server to shut down.
    if args.first().map(String::as_str) == Some("--shutdown") {
        let Some(addr) = args.get(1) else {
            return usage();
        };
        return match Client::connect(addr.as_str())
            .and_then(|mut c| c.shutdown_server())
        {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("tdbms-server: shutdown failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let mut dir: Option<String> = None;
    let mut addr = String::from("127.0.0.1:4477");
    let mut durable = false;
    let mut checkpoint_bytes: Option<u64> = None;
    let mut cfg = ServerConfig::default();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let num = |name: &str, it: &mut dyn Iterator<Item = String>| {
            it.next()
                .and_then(|v| v.parse::<u64>().ok())
                .ok_or_else(|| {
                    eprintln!("tdbms-server: {name} needs a numeric value")
                })
        };
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => addr = a,
                None => return usage(),
            },
            "--durable" => durable = true,
            "--allow-copy" => cfg.allow_copy = true,
            "--no-remote-shutdown" => cfg.allow_remote_shutdown = false,
            "--max-conns" => match num("--max-conns", &mut it) {
                Ok(n) => cfg.max_connections = n as usize,
                Err(()) => return usage(),
            },
            "--timeout-ms" => match num("--timeout-ms", &mut it) {
                Ok(n) => cfg.query_timeout = Duration::from_millis(n),
                Err(()) => return usage(),
            },
            "--max-rows" => match num("--max-rows", &mut it) {
                Ok(n) => cfg.max_rows = n,
                Err(()) => return usage(),
            },
            "--max-reply-bytes" => {
                match num("--max-reply-bytes", &mut it) {
                    Ok(n) => cfg.max_reply_bytes = n as usize,
                    Err(()) => return usage(),
                }
            }
            "--checkpoint-every-bytes" => {
                match num("--checkpoint-every-bytes", &mut it) {
                    Ok(n) => checkpoint_bytes = Some(n),
                    Err(()) => return usage(),
                }
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') && dir.is_none() => {
                dir = Some(other.to_string())
            }
            other => {
                eprintln!("tdbms-server: unknown argument {other:?}");
                return usage();
            }
        }
    }

    let Some(dir) = dir else { return usage() };

    let db = if durable {
        Database::open_durable(&dir)
    } else {
        Database::open(&dir)
    };
    let mut db = match db {
        Ok(db) => db,
        Err(e) => {
            eprintln!("tdbms-server: cannot open {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if checkpoint_bytes.is_some() {
        if !durable {
            eprintln!(
                "tdbms-server: --checkpoint-every-bytes requires \
                 --durable"
            );
            return usage();
        }
        db.set_checkpoint_every_bytes(checkpoint_bytes);
    }
    let engine = Engine::new(db);

    let server = match Server::bind(engine, &addr, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tdbms-server: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bound = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tdbms-server: cannot resolve address: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Scripts parse this exact line to learn the ephemeral port.
    println!("listening on {bound}");
    use std::io::Write;
    let _ = std::io::stdout().flush();

    install_signal_handlers();
    let handle = server.handle();
    let watcher = std::thread::spawn(move || loop {
        if SIGNALED.load(Ordering::SeqCst) {
            handle.shutdown();
            break;
        }
        if handle.is_shutting_down() {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    });

    let code = match server.run() {
        Ok(stats) => {
            println!(
                "shutdown: connections={} queries={} errors={} \
                 busy={} protocol_errors={} panics={} accept_errors={}",
                stats.connections,
                stats.queries,
                stats.query_errors,
                stats.busy_rejections,
                stats.protocol_errors,
                stats.panics_caught,
                stats.accept_errors
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("tdbms-server: {e}");
            ExitCode::FAILURE
        }
    };
    let _ = watcher.join();
    code
}
