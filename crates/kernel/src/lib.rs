//! # tdbms-kernel
//!
//! Foundation types shared by every layer of the temporal DBMS:
//!
//! * [`time`] — the 32-bit temporal attribute type of the prototype
//!   (one-second resolution, parsing of "various formats of date and time",
//!   output at resolutions "ranging from a second to a year"), together with
//!   the civil-calendar arithmetic it needs.
//! * [`value`] — runtime values and their [`value::Domain`]s (`i1`/`i2`/`i4`,
//!   `f4`/`f8`, fixed-width `c<N>` strings, and the distinct `time` type).
//! * [`schema`] — relation schemas, the four database classes of the paper
//!   (static, rollback, historical, temporal), event vs. interval relations,
//!   and the *embedding* of a temporal relation into a flat record by
//!   appending implicit time attributes.
//! * [`row`] — fixed-width binary row encoding used by the page store.
//! * [`clock`] — the transaction clock ("now"), logical for reproducibility.
//! * [`prng`] — deterministic seedable randomness (PCG32) so benchmark
//!   workloads and property tests replay bit-identically, offline.
//! * [`tmpdir`] — collision-free scratch directories for tests (pid +
//!   process-global counter, never the wall clock).
//! * [`error`] — the common error type.
//!
//! The crate is dependency-free and usable on its own.

pub mod clock;
pub mod error;
pub mod prng;
pub mod row;
pub mod schema;
pub mod time;
pub mod tmpdir;
pub mod value;

pub use clock::Clock;
pub use error::{Error, Result};
pub use prng::Prng;
pub use row::{RowCodec, RowView};
pub use schema::{
    AttrDef, DatabaseClass, Schema, TemporalAttr, TemporalKind,
};
pub use time::{Granularity, TimeVal};
pub use value::{Domain, Value};
