//! The error type shared across the workspace.

use std::fmt;

/// Convenient result alias used throughout the DBMS.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by any layer of the DBMS.
///
/// The prototype keeps a single flat error enum: the system is small enough
/// that one vocabulary of failures serves parsing, binding, storage, and
/// execution alike, and it spares every crate from wrapping/unwrapping
/// layer-specific error types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A date/time literal could not be parsed.
    BadTime(String),
    /// A value did not fit the declared domain (overflow, width, type).
    BadValue(String),
    /// Lexical error in a TQuel statement.
    Lex { line: u32, col: u32, msg: String },
    /// Syntax error in a TQuel statement.
    Parse { line: u32, col: u32, msg: String },
    /// Semantic error (unknown attribute, clause not applicable to the
    /// relation's database class, type mismatch, ...).
    Semantic(String),
    /// A catalog lookup failed.
    NoSuchRelation(String),
    /// A relation with this name already exists.
    DuplicateRelation(String),
    /// Unknown range variable or attribute.
    NoSuchAttribute(String),
    /// The storage layer was asked for a page that does not exist.
    NoSuchPage(u32),
    /// A tuple did not fit in a page, or a row buffer had the wrong length.
    RowSize { expected: usize, got: usize },
    /// An operation is not applicable to the relation's database class,
    /// e.g. `as of` on a static relation.
    NotApplicable(String),
    /// Underlying I/O failure (file-backed disk manager only).
    Io(String),
    /// Data read back from storage failed a validity check: a checksum
    /// mismatch, a bad page-kind tag, an out-of-range slot, a malformed
    /// WAL frame. Unlike [`Error::Internal`] (a bug in the DBMS), this
    /// points at the media; `file`/`page` locate the damage when known.
    Corruption {
        file: Option<u32>,
        page: Option<u32>,
        detail: String,
    },
    /// The engine's commit lock was poisoned: a writer panicked while
    /// holding it, so the shared database may be half-applied. Every
    /// subsequent operation on that engine fails with this error rather
    /// than silently serving possibly-inconsistent state.
    Poisoned,
    /// A query exceeded its wall-clock budget and was abandoned before
    /// producing a result. The partial work is discarded; reads leave the
    /// database untouched and writes are refused up front, so a timed-out
    /// statement never commits half its effect.
    Timeout { ms: u64 },
    /// A query tried to produce more output than its caller allowed
    /// (`what` names the limited resource, e.g. "rows" or "reply bytes").
    LimitExceeded { what: String, limit: u64 },
    /// The server is at its connection cap; the request was rejected
    /// immediately rather than queued, so clients never hang on admission.
    Busy,
    /// The query was interrupted by an explicit cancel request (connection
    /// teardown, session interrupt) rather than by a resource limit.
    Canceled,
    /// The server is draining for shutdown and no longer accepts new work.
    ShuttingDown,
    /// The engine hit resource exhaustion on the write path (disk full,
    /// failed fsync) and dropped into read-only degraded mode. Unlike
    /// [`Error::Poisoned`] the in-flight statement was rolled back, so
    /// the shared state is consistent: snapshot reads keep serving and
    /// writes re-arm automatically once the resource recovers. Callers
    /// may retry the write later.
    Degraded { reason: String },
    /// The connection died while a non-idempotent request was in flight,
    /// so the client cannot tell whether the write was applied. Retrying
    /// automatically could double-apply it; the caller must decide.
    RetryUnsafe(String),
    /// The peer violated the wire protocol: truncated frame, oversized
    /// length prefix, unknown opcode, malformed payload. The connection
    /// that produced it is dropped.
    Protocol(String),
    /// Invariant violation that indicates a bug in the DBMS itself.
    Internal(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::BadTime(s) => write!(f, "invalid date/time: {s}"),
            Error::BadValue(s) => write!(f, "invalid value: {s}"),
            Error::Lex { line, col, msg } => {
                write!(f, "lexical error at {line}:{col}: {msg}")
            }
            Error::Parse { line, col, msg } => {
                write!(f, "syntax error at {line}:{col}: {msg}")
            }
            Error::Semantic(s) => write!(f, "semantic error: {s}"),
            Error::NoSuchRelation(s) => write!(f, "no such relation: {s}"),
            Error::DuplicateRelation(s) => {
                write!(f, "relation already exists: {s}")
            }
            Error::NoSuchAttribute(s) => {
                write!(f, "no such attribute: {s}")
            }
            Error::NoSuchPage(p) => write!(f, "no such page: {p}"),
            Error::RowSize { expected, got } => {
                write!(
                    f,
                    "bad row size: expected {expected} bytes, got {got}"
                )
            }
            Error::NotApplicable(s) => write!(f, "not applicable: {s}"),
            Error::Io(s) => write!(f, "i/o error: {s}"),
            Error::Corruption { file, page, detail } => {
                write!(f, "corruption detected")?;
                if let Some(file) = file {
                    write!(f, " in file {file}")?;
                }
                if let Some(page) = page {
                    write!(f, " page {page}")?;
                }
                write!(f, ": {detail}")
            }
            Error::Poisoned => write!(
                f,
                "engine poisoned: a writer panicked mid-commit; \
                 reopen the database to recover"
            ),
            Error::Timeout { ms } => {
                write!(f, "query timed out after {ms} ms")
            }
            Error::LimitExceeded { what, limit } => {
                write!(f, "query exceeded {what} limit of {limit}")
            }
            Error::Busy => write!(
                f,
                "server busy: connection limit reached, try again later"
            ),
            Error::Canceled => write!(f, "query canceled"),
            Error::ShuttingDown => {
                write!(f, "server is shutting down")
            }
            Error::Degraded { reason } => write!(
                f,
                "database degraded to read-only ({reason}); \
                 writes will resume automatically once the \
                 resource recovers — retry later"
            ),
            Error::RetryUnsafe(s) => write!(
                f,
                "connection lost mid-write, result unknown: {s}; \
                 not retried automatically (the write may have \
                 been applied)"
            ),
            Error::Protocol(s) => write!(f, "protocol error: {s}"),
            Error::Internal(s) => write!(f, "internal error: {s}"),
        }
    }
}

impl Error {
    /// True for failures that are safe and sensible to retry verbatim:
    /// the request was refused *before* any effect (admission control,
    /// shutdown drain) or the engine is temporarily read-only. False
    /// for semantic errors, corruption, poisoning, and
    /// [`Error::RetryUnsafe`], where a blind retry is wrong.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Error::Busy
                | Error::Degraded { .. }
                | Error::Timeout { .. }
                | Error::ShuttingDown
        )
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::Parse {
            line: 3,
            col: 7,
            msg: "expected ')'".into(),
        };
        assert_eq!(e.to_string(), "syntax error at 3:7: expected ')'");
        assert_eq!(
            Error::NoSuchRelation("emp".into()).to_string(),
            "no such relation: emp"
        );
    }

    #[test]
    fn corruption_display_handles_missing_location() {
        let full = Error::Corruption {
            file: Some(3),
            page: Some(17),
            detail: "checksum mismatch".into(),
        };
        assert_eq!(
            full.to_string(),
            "corruption detected in file 3 page 17: checksum mismatch"
        );
        let bare = Error::Corruption {
            file: None,
            page: None,
            detail: "bad page kind tag 9".into(),
        };
        assert_eq!(
            bare.to_string(),
            "corruption detected: bad page kind tag 9"
        );
    }

    #[test]
    fn poisoned_display_names_the_recovery_path() {
        let msg = Error::Poisoned.to_string();
        assert!(msg.contains("poisoned"), "{msg}");
        assert!(msg.contains("reopen"), "{msg}");
    }

    #[test]
    fn guardrail_errors_display() {
        assert_eq!(
            Error::Timeout { ms: 250 }.to_string(),
            "query timed out after 250 ms"
        );
        assert_eq!(
            Error::LimitExceeded {
                what: "rows".into(),
                limit: 100
            }
            .to_string(),
            "query exceeded rows limit of 100"
        );
        assert!(Error::Busy.to_string().contains("busy"));
        assert_eq!(Error::Canceled.to_string(), "query canceled");
        assert!(Error::ShuttingDown.to_string().contains("shutting down"));
        assert_eq!(
            Error::Protocol("short frame".into()).to_string(),
            "protocol error: short frame"
        );
    }

    #[test]
    fn degraded_display_promises_recovery() {
        let e = Error::Degraded {
            reason: "disk full".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("degraded"), "{msg}");
        assert!(msg.contains("disk full"), "{msg}");
        assert!(msg.contains("retry"), "{msg}");
    }

    #[test]
    fn retryability_classification() {
        assert!(Error::Busy.is_retryable());
        assert!(Error::ShuttingDown.is_retryable());
        assert!(Error::Timeout { ms: 10 }.is_retryable());
        assert!(Error::Degraded {
            reason: "fsync failed".into()
        }
        .is_retryable());
        assert!(!Error::Poisoned.is_retryable());
        assert!(!Error::RetryUnsafe("mid-write".into()).is_retryable());
        assert!(!Error::Semantic("bad".into()).is_retryable());
        assert!(!Error::Io("enospc".into()).is_retryable());
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
    }
}
