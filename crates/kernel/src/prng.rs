//! Deterministic pseudo-random number generation.
//!
//! The benchmark workloads of Section 5 and the property-test harness
//! both need randomness that is *reproducible*: the paper's contribution
//! is a measurement (page I/O per query as the update count grows), and
//! a reproduction whose test databases differ from run to run cannot
//! regenerate its figures bit-for-bit. This module provides a small,
//! dependency-free generator with a pinned algorithm so the same seed
//! yields the same stream on every platform and in every build, forever.
//!
//! The generator is PCG32 (Melissa O'Neill's `pcg32_xsh_rr_64_32`):
//! a 64-bit linear congruential state with an output permutation, plus a
//! per-stream increment. Seeding expands a single `u64` through
//! SplitMix64 so that similar seeds (0, 1, 2, …) still produce
//! uncorrelated streams. Integer ranges are sampled without modulo bias
//! by rejection.
//!
//! Conventions used throughout the workspace:
//!
//! * Every randomized workload takes an explicit `u64` seed and derives
//!   all of its randomness from one [`Prng`] seeded with it.
//! * Sub-tasks that must not perturb each other's streams use
//!   [`Prng::split`] to fork an independent child generator.
//! * Failing property tests print the case seed; re-seeding a [`Prng`]
//!   with it replays the exact case (see `tdbms-prop`).

use std::ops::{Range, RangeInclusive};

/// SplitMix64: the seed expander (and a fine generator in its own right
/// for non-statistical uses). One round, as published by Steele et al.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable deterministic generator (PCG32).
///
/// ```
/// use tdbms_kernel::prng::Prng;
/// let mut a = Prng::seed_from_u64(42);
/// let mut b = Prng::seed_from_u64(42);
/// assert_eq!(a.random_range(0..1000), b.random_range(0..1000));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    state: u64,
    /// Stream selector; always odd.
    inc: u64,
}

const PCG_MUL: u64 = 6_364_136_223_846_793_005;

impl Prng {
    /// Seed deterministically from a single integer.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let state = splitmix64(&mut sm);
        let inc = splitmix64(&mut sm) | 1;
        let mut rng = Prng { state: 0, inc };
        // Standard PCG initialization: advance once, add the seed state,
        // advance again, so `state` is well mixed before the first output.
        rng.step();
        rng.state = rng.state.wrapping_add(state);
        rng.step();
        rng
    }

    #[inline]
    fn step(&mut self) -> u64 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MUL).wrapping_add(self.inc);
        old
    }

    /// Next 32 uniform bits (`pcg32_xsh_rr`).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.step();
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniform bits (two 32-bit outputs).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Uniform value in `[0, n)`, bias-free by rejection. `n` must be
    /// nonzero.
    pub fn random_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "random_below(0)");
        // Reject the partial cycle at the bottom of the u64 range:
        // `threshold = 2^64 mod n`, so [threshold, 2^64) covers a whole
        // number of copies of [0, n).
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            if x >= threshold {
                return x % n;
            }
        }
    }

    /// Uniform value in an integer range (`lo..hi` or `lo..=hi`).
    ///
    /// Panics on an empty range, mirroring `rand`'s contract.
    #[inline]
    pub fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Uniform boolean.
    #[inline]
    pub fn random_bool(&mut self) -> bool {
        self.next_u32() & 1 == 1
    }

    /// Fill a byte slice with uniform bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.random_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Fork an independent child generator.
    ///
    /// The child's seed material is drawn from this generator, so
    /// repeated splits yield distinct, uncorrelated streams while the
    /// parent remains deterministic: splitting is itself part of the
    /// reproducible stream.
    pub fn split(&mut self) -> Prng {
        Prng::seed_from_u64(self.next_u64())
    }
}

/// Integer ranges a [`Prng`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform sample. Panics if the range is empty.
    fn sample(self, rng: &mut Prng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample(self, rng: &mut Prng) -> $t {
                assert!(
                    self.start < self.end,
                    "random_range: empty range {}..{}",
                    self.start, self.end,
                );
                // Width fits in u64 for every supported type: compute it
                // in the two's-complement image so signed ranges work.
                let span =
                    (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.random_below(span))
                    as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut Prng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(
                    lo <= hi,
                    "random_range: empty range {lo}..={hi}",
                );
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as u64).wrapping_add(rng.random_below(span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_produce_identical_streams() {
        let mut a = Prng::seed_from_u64(8_504_033);
        let mut b = Prng::seed_from_u64(8_504_033);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn stream_is_pinned_forever() {
        // Golden values: if these change, every checked-in benchmark
        // figure and property-test replay seed silently means something
        // different. Never update them without regenerating EXPERIMENTS.
        let mut r = Prng::seed_from_u64(0);
        assert_eq!(
            [r.next_u32(), r.next_u32(), r.next_u32(), r.next_u32()],
            [0x8A5D_EA50, 0x8B65_B731, 0xA3F9_6E62, 0xC354_6B80],
        );
        // The benchmark workload seed (BenchConfig::new).
        let mut r = Prng::seed_from_u64(8_504_033);
        assert_eq!(r.next_u64(), 0x5BDE_1D7E_8571_6DF3);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u32()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u32()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn ranges_stay_in_bounds_and_hit_endpoints() {
        let mut r = Prng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..500 {
            let v = r.random_range(0i64..10);
            assert!((0..10).contains(&v));
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..10 drawn in 500 tries");

        for _ in 0..500 {
            let c = r.random_range(b'a'..=b'z');
            assert!(c.is_ascii_lowercase());
        }
        let mut lo_hit = false;
        let mut hi_hit = false;
        for _ in 0..200 {
            match r.random_range(-3i32..=3) {
                -3 => lo_hit = true,
                3 => hi_hit = true,
                v => assert!((-3..=3).contains(&v)),
            }
        }
        assert!(lo_hit && hi_hit, "inclusive endpoints reachable");
    }

    #[test]
    fn signed_and_extreme_ranges() {
        let mut r = Prng::seed_from_u64(11);
        for _ in 0..200 {
            let v = r.random_range(i64::MIN..=i64::MAX);
            let _ = v; // whole domain: nothing to bound-check
            let w = r.random_range(-1_000_000i64..-999_990);
            assert!((-1_000_000..-999_990).contains(&w));
            let u = r.random_range(u32::MAX - 2..u32::MAX);
            assert!((u32::MAX - 2..u32::MAX).contains(&u));
        }
        // Single-value ranges are fine.
        assert_eq!(r.random_range(5u8..=5), 5);
        assert_eq!(r.random_range(-7i32..-6), -7);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Prng::seed_from_u64(0).random_range(3i32..3);
    }

    #[test]
    fn random_below_is_roughly_uniform() {
        let mut r = Prng::seed_from_u64(99);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.random_below(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c} off");
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut xs: Vec<u32> = (0..100).collect();
        let mut r = Prng::seed_from_u64(5);
        r.shuffle(&mut xs);
        let mut ys: Vec<u32> = (0..100).collect();
        let mut r2 = Prng::seed_from_u64(5);
        r2.shuffle(&mut ys);
        assert_eq!(xs, ys);
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "seed 5 does move it");
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_streams_are_independent_and_reproducible() {
        let mut parent1 = Prng::seed_from_u64(1234);
        let mut parent2 = Prng::seed_from_u64(1234);
        let mut child1 = parent1.split();
        let mut child2 = parent2.split();
        for _ in 0..100 {
            assert_eq!(child1.next_u64(), child2.next_u64());
        }
        // Parent and child streams differ from each other.
        let mut p = Prng::seed_from_u64(1234);
        let mut c = p.clone().split();
        assert_ne!(
            (0..8).map(|_| p.next_u32()).collect::<Vec<_>>(),
            (0..8).map(|_| c.next_u32()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = Prng::seed_from_u64(3);
        let mut buf = [0u8; 7];
        r.fill_bytes(&mut buf);
        let mut r2 = Prng::seed_from_u64(3);
        let mut buf2 = [0u8; 7];
        r2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
        assert!(buf.iter().any(|&b| b != 0), "7 zero bytes is 2^-56");
    }
}
