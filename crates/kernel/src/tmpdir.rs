//! Unique scratch directories for tests and tools.
//!
//! Test binaries run in parallel (cargo spawns one process per test
//! target, each multi-threaded), and CI reruns the same suite over and
//! over. Deriving scratch paths from the wall clock would be both racy
//! and nondeterministic, so paths here are built only from stable,
//! collision-free inputs: a caller tag, the process id, and a
//! process-global counter.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A fresh, empty scratch directory under the system temp dir.
///
/// The path is `tdbms-<tag>-<pid>-<n>` where `n` is a process-global
/// counter: unique across threads of one process via the counter and
/// across concurrently running processes via the pid. A stale directory
/// left by a previous run of the same name is removed first, so repeated
/// CI runs never see each other's leftovers.
pub fn fresh_dir(tag: &str) -> PathBuf {
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("tdbms-{tag}-{}-{n}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::create_dir_all(&dir)
        .expect("creating scratch directory under temp_dir");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirs_are_unique_and_empty() {
        let a = fresh_dir("kernel-unit");
        let b = fresh_dir("kernel-unit");
        assert_ne!(a, b);
        assert!(a.is_dir() && b.is_dir());
        assert_eq!(std::fs::read_dir(&a).unwrap().count(), 0);
        std::fs::remove_dir_all(a).ok();
        std::fs::remove_dir_all(b).ok();
    }

    #[test]
    fn stale_contents_are_cleared() {
        let a = fresh_dir("kernel-stale");
        std::fs::write(a.join("leftover"), b"x").unwrap();
        // Simulate a rerun colliding on the same name: force the same
        // path through a direct rebuild of the directory.
        std::fs::remove_dir_all(&a).ok();
        std::fs::create_dir_all(&a).unwrap();
        std::fs::write(a.join("leftover"), b"x").unwrap();
        let again = fresh_dir("kernel-stale2");
        assert_eq!(std::fs::read_dir(&again).unwrap().count(), 0);
        std::fs::remove_dir_all(a).ok();
        std::fs::remove_dir_all(again).ok();
    }
}
