//! The transaction clock.
//!
//! Every TQuel statement is stamped with the time at which it executes:
//! `append` sets `transaction_start` to "now", `delete` sets
//! `transaction_stop` to "now", and the literal `"now"` in `when`/`as of`
//! clauses resolves to the same instant.
//!
//! The prototype on the VAX used the wall clock; for a reproducible
//! benchmark we use a *logical* clock that starts at a configurable origin
//! and advances by a fixed step per statement. This preserves the only
//! property the semantics need — strict monotonicity — while making every
//! run bit-identical.

use crate::time::TimeVal;
use std::sync::atomic::{AtomicU32, Ordering};

/// A monotonically advancing statement clock.
///
/// Interior mutability keeps the clock shareable by value inside a database
/// handle without threading `&mut` through every read-only query path; the
/// counter is atomic so a clock shared across sessions stays strictly
/// monotonic under concurrent ticks.
#[derive(Debug)]
pub struct Clock {
    now: AtomicU32,
    step: u32,
}

impl Clock {
    /// A clock starting at `origin`, advancing `step` seconds per tick.
    pub fn new(origin: TimeVal, step_secs: u32) -> Self {
        Clock {
            now: AtomicU32::new(origin.as_secs()),
            step: step_secs.max(1),
        }
    }

    /// The current instant ("now") without advancing.
    pub fn now(&self) -> TimeVal {
        TimeVal::from_secs(self.now.load(Ordering::Relaxed))
    }

    /// Advance to the next statement time and return it.
    pub fn tick(&self) -> TimeVal {
        let next = self
            .now
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| {
                Some(t.saturating_add(self.step).min(u32::MAX - 1))
            })
            .expect("clock update closure never returns None")
            .saturating_add(self.step)
            .min(u32::MAX - 1);
        TimeVal::from_secs(next)
    }

    /// Jump the clock forward to `t` (no-op if `t` is not later than now).
    /// Used by workloads that model updates at specific dates.
    pub fn advance_to(&self, t: TimeVal) {
        self.now
            .fetch_max(t.as_secs().min(u32::MAX - 1), Ordering::Relaxed);
    }
}

impl Default for Clock {
    /// Starts at 1980-03-01 00:00:00 (just after the benchmark's
    /// initialization window of Jan 1 – Feb 15, 1980), one minute per tick.
    fn default() -> Self {
        Clock::new(TimeVal::from_secs(320_716_800), 60)
    }
}

impl Clone for Clock {
    fn clone(&self) -> Self {
        Clock {
            now: AtomicU32::new(self.now.load(Ordering::Relaxed)),
            step: self.step,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_strictly_monotonic() {
        let c = Clock::new(TimeVal::from_secs(100), 5);
        assert_eq!(c.now().as_secs(), 100);
        assert_eq!(c.tick().as_secs(), 105);
        assert_eq!(c.tick().as_secs(), 110);
        assert_eq!(c.now().as_secs(), 110);
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let c = Clock::new(TimeVal::from_secs(100), 1);
        c.advance_to(TimeVal::from_secs(50));
        assert_eq!(c.now().as_secs(), 100);
        c.advance_to(TimeVal::from_secs(500));
        assert_eq!(c.now().as_secs(), 500);
    }

    #[test]
    fn clock_never_reaches_forever() {
        let c = Clock::new(TimeVal::from_secs(u32::MAX - 3), 10);
        let t = c.tick();
        assert!(!t.is_forever());
        assert_eq!(c.tick().as_secs(), u32::MAX - 1);
    }

    #[test]
    fn default_origin_is_after_benchmark_window() {
        let c = Clock::default();
        let feb15 = TimeVal::from_ymd(1980, 2, 15).unwrap();
        assert!(c.now() > feb15);
        assert_eq!(c.now(), TimeVal::from_ymd(1980, 3, 1).unwrap());
    }

    #[test]
    fn zero_step_is_clamped_to_one() {
        let c = Clock::new(TimeVal::from_secs(0), 0);
        assert_eq!(c.tick().as_secs(), 1);
    }
}
