//! Relation schemas and the taxonomy of database types.
//!
//! Two orthogonal capabilities define the four classes of the paper's
//! taxonomy (its Figure 1): support for *historical queries* (valid time)
//! and support for *rollback* (transaction time):
//!
//! |                    | no rollback | rollback |
//! |--------------------|-------------|----------|
//! | **static queries** | static      | rollback |
//! | **historical queries** | historical | temporal |
//!
//! A temporal relation is *embedded* into a flat record by appending
//! implicit time attributes to the explicit ones: two transaction-time
//! attributes for rollback and temporal relations, and one (event) or two
//! (interval) valid-time attributes for historical and temporal relations.

use crate::error::{Error, Result};
use crate::value::Domain;
use std::fmt;

/// The four database classes of the taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DatabaseClass {
    /// No temporal support: updates destroy the previous state.
    Static,
    /// Transaction time only: the database can be rolled back to any past
    /// state *of the database* (`as of` clause).
    Rollback,
    /// Valid time only: the history *of the enterprise* can be queried
    /// (`when` and `valid` clauses).
    Historical,
    /// Both kinds of time: tuples "valid at some moment seen as of some
    /// other moment".
    Temporal,
}

impl DatabaseClass {
    /// Whether relations of this class carry transaction time and support
    /// the `as of` (rollback) clause.
    pub fn has_transaction_time(self) -> bool {
        matches!(self, DatabaseClass::Rollback | DatabaseClass::Temporal)
    }

    /// Whether relations of this class carry valid time and support the
    /// `when` and `valid` clauses.
    pub fn has_valid_time(self) -> bool {
        matches!(self, DatabaseClass::Historical | DatabaseClass::Temporal)
    }

    /// All four classes, in taxonomy order.
    pub const ALL: [DatabaseClass; 4] = [
        DatabaseClass::Static,
        DatabaseClass::Rollback,
        DatabaseClass::Historical,
        DatabaseClass::Temporal,
    ];

    /// Parse the keyword used in the extended `create` statement.
    pub fn parse(s: &str) -> Result<Self> {
        match s.to_ascii_lowercase().as_str() {
            "static" => Ok(DatabaseClass::Static),
            "rollback" => Ok(DatabaseClass::Rollback),
            "historical" => Ok(DatabaseClass::Historical),
            "temporal" | "persistent" => Ok(DatabaseClass::Temporal),
            _ => Err(Error::Semantic(format!(
                "unknown relation class {s:?}"
            ))),
        }
    }
}

impl fmt::Display for DatabaseClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatabaseClass::Static => write!(f, "static"),
            DatabaseClass::Rollback => write!(f, "rollback"),
            DatabaseClass::Historical => write!(f, "historical"),
            DatabaseClass::Temporal => write!(f, "temporal"),
        }
    }
}

/// Whether a historical/temporal relation models *events* (instantaneous,
/// one valid-time attribute) or *intervals* (a valid period, two
/// attributes). Irrelevant for static and rollback relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TemporalKind {
    /// The relation models facts valid over a period: `valid_from`/`valid_to`.
    #[default]
    Interval,
    /// The relation models instantaneous events: a single `valid_at`.
    Event,
}

impl fmt::Display for TemporalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemporalKind::Interval => write!(f, "interval"),
            TemporalKind::Event => write!(f, "event"),
        }
    }
}

/// The implicit time attributes a schema may carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TemporalAttr {
    /// When this fact became valid in the modeled reality.
    ValidFrom,
    /// When this fact stopped being valid (FOREVER while current).
    ValidTo,
    /// The instant of an event (event relations only).
    ValidAt,
    /// When this version was stored in the database.
    TransactionStart,
    /// When this version was logically superseded (FOREVER while current).
    TransactionStop,
}

impl TemporalAttr {
    /// The attribute name visible in TQuel target lists and output.
    pub fn name(self) -> &'static str {
        match self {
            TemporalAttr::ValidFrom => "valid_from",
            TemporalAttr::ValidTo => "valid_to",
            TemporalAttr::ValidAt => "valid_at",
            TemporalAttr::TransactionStart => "transaction_start",
            TemporalAttr::TransactionStop => "transaction_stop",
        }
    }

    /// The implicit attributes for a relation of this class and kind, in
    /// storage order (valid time first, transaction time last — the order
    /// the paper's embedding appends them in).
    pub fn for_relation(
        class: DatabaseClass,
        kind: TemporalKind,
    ) -> &'static [TemporalAttr] {
        use DatabaseClass::*;
        use TemporalAttr::*;
        use TemporalKind::*;
        match (class, kind) {
            (Static, _) => &[],
            (Rollback, _) => &[TransactionStart, TransactionStop],
            (Historical, Interval) => &[ValidFrom, ValidTo],
            (Historical, Event) => &[ValidAt],
            (Temporal, Interval) => {
                &[ValidFrom, ValidTo, TransactionStart, TransactionStop]
            }
            (Temporal, Event) => {
                &[ValidAt, TransactionStart, TransactionStop]
            }
        }
    }
}

/// One explicitly declared attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDef {
    /// Attribute name (lower-cased identifier).
    pub name: String,
    /// Declared domain.
    pub domain: Domain,
}

impl AttrDef {
    /// Construct, normalizing the name to lower case.
    pub fn new(name: impl Into<String>, domain: Domain) -> Self {
        AttrDef {
            name: name.into().to_ascii_lowercase(),
            domain,
        }
    }
}

/// A relation schema: the explicit attributes plus the implicit time
/// attributes determined by the database class and temporal kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    explicit: Vec<AttrDef>,
    class: DatabaseClass,
    kind: TemporalKind,
}

impl Schema {
    /// Build a schema; attribute names must be unique (after lower-casing)
    /// and must not collide with the implicit attribute names.
    pub fn new(
        explicit: Vec<AttrDef>,
        class: DatabaseClass,
        kind: TemporalKind,
    ) -> Result<Self> {
        if explicit.is_empty() {
            return Err(Error::Semantic(
                "relation needs at least one attribute".into(),
            ));
        }
        for (i, a) in explicit.iter().enumerate() {
            if explicit[..i].iter().any(|b| b.name == a.name) {
                return Err(Error::Semantic(format!(
                    "duplicate attribute {:?}",
                    a.name
                )));
            }
            if TemporalAttr::for_relation(class, kind)
                .iter()
                .any(|t| t.name() == a.name)
            {
                return Err(Error::Semantic(format!(
                    "attribute {:?} collides with an implicit time attribute",
                    a.name
                )));
            }
        }
        Ok(Schema {
            explicit,
            class,
            kind,
        })
    }

    /// Shorthand for a static schema.
    pub fn static_relation(explicit: Vec<AttrDef>) -> Result<Self> {
        Schema::new(explicit, DatabaseClass::Static, TemporalKind::Interval)
    }

    /// The database class of this relation.
    pub fn class(&self) -> DatabaseClass {
        self.class
    }

    /// Event or interval (meaningful when the class has valid time).
    pub fn kind(&self) -> TemporalKind {
        self.kind
    }

    /// Explicitly declared attributes.
    pub fn explicit_attrs(&self) -> &[AttrDef] {
        &self.explicit
    }

    /// The implicit time attributes, in storage order.
    pub fn implicit_attrs(&self) -> &'static [TemporalAttr] {
        TemporalAttr::for_relation(self.class, self.kind)
    }

    /// Total number of stored attributes (explicit + implicit).
    pub fn arity(&self) -> usize {
        self.explicit.len() + self.implicit_attrs().len()
    }

    /// The domain of the stored attribute at `idx` (explicit attributes
    /// first, then implicit time attributes).
    pub fn domain_of(&self, idx: usize) -> Option<Domain> {
        if idx < self.explicit.len() {
            Some(self.explicit[idx].domain)
        } else if idx < self.arity() {
            Some(Domain::Time)
        } else {
            None
        }
    }

    /// The name of the stored attribute at `idx`.
    pub fn name_of(&self, idx: usize) -> Option<&str> {
        if idx < self.explicit.len() {
            Some(&self.explicit[idx].name)
        } else {
            self.implicit_attrs()
                .get(idx - self.explicit.len())
                .map(|t| t.name())
        }
    }

    /// Index of the named attribute (explicit or implicit), if any.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        if let Some(i) = self.explicit.iter().position(|a| a.name == lower)
        {
            return Some(i);
        }
        self.implicit_attrs()
            .iter()
            .position(|t| t.name() == lower)
            .map(|i| i + self.explicit.len())
    }

    /// Index of a specific implicit time attribute, if this schema has it.
    pub fn temporal_index(&self, t: TemporalAttr) -> Option<usize> {
        self.implicit_attrs()
            .iter()
            .position(|x| *x == t)
            .map(|i| i + self.explicit.len())
    }

    /// Fixed row width in bytes: the sum of all attribute widths. Each
    /// implicit time attribute is 4 bytes, reproducing the paper's layout
    /// (108-byte data tuples grow to 116 bytes for rollback/historical and
    /// 124 bytes for temporal relations).
    pub fn row_width(&self) -> usize {
        self.explicit
            .iter()
            .map(|a| a.domain.width())
            .sum::<usize>()
            + 4 * self.implicit_attrs().len()
    }

    /// Iterator over `(name, domain)` of all stored attributes.
    pub fn iter_all(&self) -> impl Iterator<Item = (&str, Domain)> + '_ {
        (0..self.arity()).map(move |i| {
            (self.name_of(i).unwrap(), self.domain_of(i).unwrap())
        })
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} (", self.class, self.kind)?;
        for (i, a) in self.explicit.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} = {}", a.name, a.domain)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_attrs() -> Vec<AttrDef> {
        vec![
            AttrDef::new("id", Domain::I4),
            AttrDef::new("amount", Domain::I4),
            AttrDef::new("seq", Domain::I4),
            AttrDef::new("string", Domain::Char(96)),
        ]
    }

    #[test]
    fn paper_row_widths() {
        // The benchmark schema: 108 bytes of data.
        let s = Schema::new(
            bench_attrs(),
            DatabaseClass::Static,
            TemporalKind::Interval,
        )
        .unwrap();
        assert_eq!(s.row_width(), 108);

        let r = Schema::new(
            bench_attrs(),
            DatabaseClass::Rollback,
            TemporalKind::Interval,
        )
        .unwrap();
        assert_eq!(r.row_width(), 116);

        let h = Schema::new(
            bench_attrs(),
            DatabaseClass::Historical,
            TemporalKind::Interval,
        )
        .unwrap();
        assert_eq!(h.row_width(), 116);

        let t = Schema::new(
            bench_attrs(),
            DatabaseClass::Temporal,
            TemporalKind::Interval,
        )
        .unwrap();
        assert_eq!(t.row_width(), 124);
    }

    #[test]
    fn implicit_attrs_per_class_and_kind() {
        use TemporalAttr::*;
        assert_eq!(
            TemporalAttr::for_relation(
                DatabaseClass::Temporal,
                TemporalKind::Interval
            ),
            &[ValidFrom, ValidTo, TransactionStart, TransactionStop]
        );
        assert_eq!(
            TemporalAttr::for_relation(
                DatabaseClass::Historical,
                TemporalKind::Event
            ),
            &[ValidAt]
        );
        assert_eq!(
            TemporalAttr::for_relation(
                DatabaseClass::Rollback,
                TemporalKind::Event
            ),
            &[TransactionStart, TransactionStop]
        );
        assert!(TemporalAttr::for_relation(
            DatabaseClass::Static,
            TemporalKind::Interval
        )
        .is_empty());
    }

    #[test]
    fn lookup_finds_implicit_attributes() {
        let t = Schema::new(
            bench_attrs(),
            DatabaseClass::Temporal,
            TemporalKind::Interval,
        )
        .unwrap();
        assert_eq!(t.index_of("id"), Some(0));
        assert_eq!(t.index_of("valid_from"), Some(4));
        assert_eq!(t.index_of("transaction_stop"), Some(7));
        assert_eq!(t.index_of("nope"), None);
        assert_eq!(t.temporal_index(TemporalAttr::ValidTo), Some(5));
        assert_eq!(t.domain_of(5), Some(Domain::Time));
        assert_eq!(t.name_of(7), Some("transaction_stop"));
        assert_eq!(t.arity(), 8);
    }

    #[test]
    fn rejects_duplicate_and_colliding_names() {
        let dup = vec![
            AttrDef::new("id", Domain::I4),
            AttrDef::new("ID", Domain::I4),
        ];
        assert!(Schema::static_relation(dup).is_err());
        let collide = vec![AttrDef::new("valid_from", Domain::I4)];
        assert!(Schema::new(
            collide,
            DatabaseClass::Historical,
            TemporalKind::Interval
        )
        .is_err());
        assert!(Schema::static_relation(vec![]).is_err());
    }

    #[test]
    fn class_capabilities() {
        assert!(!DatabaseClass::Static.has_transaction_time());
        assert!(!DatabaseClass::Static.has_valid_time());
        assert!(DatabaseClass::Rollback.has_transaction_time());
        assert!(!DatabaseClass::Rollback.has_valid_time());
        assert!(!DatabaseClass::Historical.has_transaction_time());
        assert!(DatabaseClass::Historical.has_valid_time());
        assert!(DatabaseClass::Temporal.has_transaction_time());
        assert!(DatabaseClass::Temporal.has_valid_time());
    }
}
