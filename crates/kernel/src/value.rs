//! Runtime values and attribute domains.
//!
//! The prototype inherits Ingres' type vocabulary: 1/2/4-byte integers,
//! 4/8-byte floats, and fixed-width character strings (`c96` in the
//! benchmark schema), plus the distinct `time` type added for temporal
//! attributes.

use crate::error::{Error, Result};
use crate::time::TimeVal;
use std::cmp::Ordering;
use std::fmt;

/// The declared type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// 1-byte signed integer (`i1`).
    I1,
    /// 2-byte signed integer (`i2`).
    I2,
    /// 4-byte signed integer (`i4`).
    I4,
    /// 4-byte float (`f4`).
    F4,
    /// 8-byte float (`f8`).
    F8,
    /// Fixed-width character string (`c<N>`), blank-padded.
    Char(u16),
    /// The distinct temporal type: 32-bit seconds (see [`TimeVal`]).
    Time,
}

impl Domain {
    /// Storage width in bytes. Rows are fixed width, so this fully
    /// determines the tuple layout.
    pub fn width(self) -> usize {
        match self {
            Domain::I1 => 1,
            Domain::I2 => 2,
            Domain::I4 => 4,
            Domain::F4 => 4,
            Domain::F8 => 8,
            Domain::Char(n) => n as usize,
            Domain::Time => 4,
        }
    }

    /// Parse Quel type syntax: `i1`, `i2`, `i4`, `f4`, `f8`, `c<N>`.
    pub fn parse(s: &str) -> Result<Domain> {
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "i1" => Ok(Domain::I1),
            "i2" => Ok(Domain::I2),
            "i4" => Ok(Domain::I4),
            "f4" => Ok(Domain::F4),
            "f8" => Ok(Domain::F8),
            "time" => Ok(Domain::Time),
            _ => {
                if let Some(n) = lower.strip_prefix('c') {
                    let n: u16 = n.parse().map_err(|_| {
                        Error::BadValue(format!("bad char width in {s:?}"))
                    })?;
                    if n == 0 || n > 1000 {
                        return Err(Error::BadValue(format!(
                            "char width {n} out of range"
                        )));
                    }
                    Ok(Domain::Char(n))
                } else {
                    Err(Error::BadValue(format!("unknown domain {s:?}")))
                }
            }
        }
    }

    /// True for the integer domains.
    pub fn is_integer(self) -> bool {
        matches!(self, Domain::I1 | Domain::I2 | Domain::I4)
    }

    /// True for the float domains.
    pub fn is_float(self) -> bool {
        matches!(self, Domain::F4 | Domain::F8)
    }

    /// True if a [`Value`] of kind `v` can be stored in this domain.
    pub fn accepts(self, v: &Value) -> bool {
        match (self, v) {
            (d, Value::Int(i)) if d.is_integer() => match d {
                Domain::I1 => i8::try_from(*i).is_ok(),
                Domain::I2 => i16::try_from(*i).is_ok(),
                Domain::I4 => i32::try_from(*i).is_ok(),
                _ => unreachable!(),
            },
            (d, Value::Int(_)) if d.is_float() => true,
            (d, Value::Float(_)) if d.is_float() => true,
            (Domain::Char(n), Value::Str(s)) => s.len() <= n as usize,
            (Domain::Time, Value::Time(_)) => true,
            _ => false,
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::I1 => write!(f, "i1"),
            Domain::I2 => write!(f, "i2"),
            Domain::I4 => write!(f, "i4"),
            Domain::F4 => write!(f, "f4"),
            Domain::F8 => write!(f, "f8"),
            Domain::Char(n) => write!(f, "c{n}"),
            Domain::Time => write!(f, "time"),
        }
    }
}

/// A runtime value.
///
/// Integers are widened to `i64` and floats to `f64` during evaluation; the
/// declared [`Domain`] narrows them again at storage time.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Any integer value.
    Int(i64),
    /// Any float value.
    Float(f64),
    /// A character string (trailing blanks trimmed on decode).
    Str(String),
    /// A temporal value.
    Time(TimeVal),
}

impl Value {
    /// The value as an integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a time, if it is one.
    pub fn as_time(&self) -> Option<TimeVal> {
        match self {
            Value::Time(t) => Some(*t),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64` (ints widen), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Three-way comparison with Quel semantics: numerics compare
    /// numerically across int/float, strings lexicographically, times
    /// chronologically. Returns `None` for incomparable kinds.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Time(a), Value::Time(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Time(t) => write!(f, "{t}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<TimeVal> for Value {
    fn from(t: TimeVal) -> Self {
        Value::Time(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_widths_match_ingres() {
        assert_eq!(Domain::I1.width(), 1);
        assert_eq!(Domain::I2.width(), 2);
        assert_eq!(Domain::I4.width(), 4);
        assert_eq!(Domain::F4.width(), 4);
        assert_eq!(Domain::F8.width(), 8);
        assert_eq!(Domain::Char(96).width(), 96);
        assert_eq!(Domain::Time.width(), 4);
    }

    #[test]
    fn parses_quel_type_syntax() {
        assert_eq!(Domain::parse("i4").unwrap(), Domain::I4);
        assert_eq!(Domain::parse("c96").unwrap(), Domain::Char(96));
        assert_eq!(Domain::parse("F8").unwrap(), Domain::F8);
        assert!(Domain::parse("c0").is_err());
        assert!(Domain::parse("x9").is_err());
        assert!(Domain::parse("c").is_err());
    }

    #[test]
    fn acceptance_respects_ranges() {
        assert!(Domain::I1.accepts(&Value::Int(127)));
        assert!(!Domain::I1.accepts(&Value::Int(128)));
        assert!(Domain::I4.accepts(&Value::Int(i32::MAX as i64)));
        assert!(!Domain::I4.accepts(&Value::Int(i32::MAX as i64 + 1)));
        assert!(Domain::Char(3).accepts(&Value::Str("abc".into())));
        assert!(!Domain::Char(3).accepts(&Value::Str("abcd".into())));
        assert!(Domain::Time.accepts(&Value::Time(TimeVal::FOREVER)));
        assert!(!Domain::Time.accepts(&Value::Int(0)));
        assert!(Domain::F4.accepts(&Value::Int(5)));
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(3.0).compare(&Value::Int(3)),
            Some(Ordering::Equal)
        );
        assert_eq!(Value::Str("a".into()).compare(&Value::Int(1)), None);
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
    }
}
