//! Fixed-width binary row encoding.
//!
//! Rows are stored exactly as wide as the schema says ([`crate::Schema::row_width`]):
//! integers in little-endian two's complement at their declared width,
//! floats in IEEE-754, strings blank-padded to their declared width, and
//! time attributes as 4-byte unsigned second counts. Fixed width keeps the
//! page layout trivial (the paper's Ingres heritage) and makes "tuples per
//! page" a pure function of the schema.

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::time::TimeVal;
use crate::value::{Domain, Value};

/// Pre-computed field offsets for a schema; the encoder/decoder.
///
/// Build one per relation and reuse it: computing offsets per row would be
/// measurable in scan-heavy workloads.
#[derive(Debug, Clone)]
pub struct RowCodec {
    offsets: Vec<usize>,
    domains: Vec<Domain>,
    width: usize,
}

impl RowCodec {
    /// Build the codec for a schema.
    pub fn new(schema: &Schema) -> Self {
        let arity = schema.arity();
        let mut offsets = Vec::with_capacity(arity);
        let mut domains = Vec::with_capacity(arity);
        let mut off = 0;
        for i in 0..arity {
            let d = schema.domain_of(i).expect("index in range");
            offsets.push(off);
            domains.push(d);
            off += d.width();
        }
        debug_assert_eq!(off, schema.row_width());
        RowCodec {
            offsets,
            domains,
            width: off,
        }
    }

    /// The fixed row width in bytes.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.domains.len()
    }

    /// Encode a full row. `values` must match the schema's arity and every
    /// value must be accepted by its domain.
    pub fn encode(&self, values: &[Value]) -> Result<Vec<u8>> {
        if values.len() != self.arity() {
            return Err(Error::RowSize {
                expected: self.arity(),
                got: values.len(),
            });
        }
        let mut buf = vec![0u8; self.width];
        for (i, v) in values.iter().enumerate() {
            self.put(&mut buf, i, v)?;
        }
        Ok(buf)
    }

    /// Write one field into an encoded row in place.
    pub fn put(&self, buf: &mut [u8], idx: usize, v: &Value) -> Result<()> {
        let d = self.domains[idx];
        if !d.accepts(v) {
            return Err(Error::BadValue(format!(
                "value {v} does not fit domain {d}"
            )));
        }
        let off = self.offsets[idx];
        let dst = &mut buf[off..off + d.width()];
        match (d, v) {
            (Domain::I1, Value::Int(i)) => dst[0] = *i as i8 as u8,
            (Domain::I2, Value::Int(i)) => {
                dst.copy_from_slice(&(*i as i16).to_le_bytes())
            }
            (Domain::I4, Value::Int(i)) => {
                dst.copy_from_slice(&(*i as i32).to_le_bytes())
            }
            (Domain::F4, v) => dst.copy_from_slice(
                &(v.as_f64().expect("accepted numeric") as f32)
                    .to_le_bytes(),
            ),
            (Domain::F8, v) => dst.copy_from_slice(
                &v.as_f64().expect("accepted numeric").to_le_bytes(),
            ),
            (Domain::Char(_), Value::Str(s)) => {
                let bytes = s.as_bytes();
                dst[..bytes.len()].copy_from_slice(bytes);
                dst[bytes.len()..].fill(b' ');
            }
            (Domain::Time, Value::Time(t)) => {
                dst.copy_from_slice(&t.as_secs().to_le_bytes())
            }
            _ => unreachable!("accepts() guards the pairing"),
        }
        Ok(())
    }

    /// Decode one field out of an encoded row.
    pub fn get(&self, buf: &[u8], idx: usize) -> Value {
        let d = self.domains[idx];
        let off = self.offsets[idx];
        let src = &buf[off..off + d.width()];
        match d {
            Domain::I1 => Value::Int(src[0] as i8 as i64),
            Domain::I2 => {
                Value::Int(i16::from_le_bytes([src[0], src[1]]) as i64)
            }
            Domain::I4 => Value::Int(i32::from_le_bytes(
                src.try_into().expect("4 bytes"),
            ) as i64),
            Domain::F4 => Value::Float(f32::from_le_bytes(
                src.try_into().expect("4 bytes"),
            ) as f64),
            Domain::F8 => Value::Float(f64::from_le_bytes(
                src.try_into().expect("8 bytes"),
            )),
            Domain::Char(_) => Value::Str(
                String::from_utf8_lossy(src)
                    .trim_end_matches(' ')
                    .to_owned(),
            ),
            Domain::Time => Value::Time(TimeVal::from_secs(
                u32::from_le_bytes(src.try_into().expect("4 bytes")),
            )),
        }
    }

    /// Decode the time field at `idx` without constructing a [`Value`].
    /// Hot path: version-visibility checks touch this on every tuple of a
    /// scan.
    pub fn get_time(&self, buf: &[u8], idx: usize) -> TimeVal {
        let off = self.offsets[idx];
        TimeVal::from_secs(u32::from_le_bytes(
            buf[off..off + 4].try_into().expect("4 bytes"),
        ))
    }

    /// Decode the i4 field at `idx` without constructing a [`Value`].
    pub fn get_i4(&self, buf: &[u8], idx: usize) -> i32 {
        let off = self.offsets[idx];
        i32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes"))
    }

    /// Overwrite the time field at `idx` in place. Used by the in-place
    /// `transaction_stop` update that logical deletion performs.
    pub fn put_time(&self, buf: &mut [u8], idx: usize, t: TimeVal) {
        let off = self.offsets[idx];
        buf[off..off + 4].copy_from_slice(&t.as_secs().to_le_bytes());
    }

    /// Byte offset of field `idx` within the encoded row. Access methods
    /// use this to carve out key bytes without decoding.
    pub fn offset_of(&self, idx: usize) -> usize {
        self.offsets[idx]
    }

    /// Domain of field `idx`.
    pub fn domain_of(&self, idx: usize) -> Domain {
        self.domains[idx]
    }

    /// Decode a full row.
    pub fn decode(&self, buf: &[u8]) -> Result<Vec<Value>> {
        if buf.len() != self.width {
            return Err(Error::RowSize {
                expected: self.width,
                got: buf.len(),
            });
        }
        Ok((0..self.arity()).map(|i| self.get(buf, i)).collect())
    }
}

/// A borrowed view of an encoded row together with its codec; convenience
/// wrapper used by result iterators.
#[derive(Debug, Clone, Copy)]
pub struct RowView<'a> {
    codec: &'a RowCodec,
    bytes: &'a [u8],
}

impl<'a> RowView<'a> {
    /// Wrap an encoded row.
    pub fn new(codec: &'a RowCodec, bytes: &'a [u8]) -> Self {
        debug_assert_eq!(bytes.len(), codec.width());
        RowView { codec, bytes }
    }

    /// Decode field `idx`.
    pub fn get(&self, idx: usize) -> Value {
        self.codec.get(self.bytes, idx)
    }

    /// The raw encoded bytes.
    pub fn bytes(&self) -> &'a [u8] {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrDef, DatabaseClass, Schema, TemporalKind};

    fn temporal_schema() -> Schema {
        Schema::new(
            vec![
                AttrDef::new("id", Domain::I4),
                AttrDef::new("amount", Domain::I4),
                AttrDef::new("seq", Domain::I4),
                AttrDef::new("string", Domain::Char(96)),
            ],
            DatabaseClass::Temporal,
            TemporalKind::Interval,
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_full_row() {
        let s = temporal_schema();
        let codec = RowCodec::new(&s);
        assert_eq!(codec.width(), 124);
        let t0 = TimeVal::from_ymd(1980, 1, 5).unwrap();
        let vals = vec![
            Value::Int(500),
            Value::Int(73_700),
            Value::Int(0),
            Value::Str("hello".into()),
            Value::Time(t0),
            Value::Time(TimeVal::FOREVER),
            Value::Time(t0),
            Value::Time(TimeVal::FOREVER),
        ];
        let buf = codec.encode(&vals).unwrap();
        assert_eq!(buf.len(), 124);
        assert_eq!(codec.decode(&buf).unwrap(), vals);
    }

    #[test]
    fn strings_are_blank_padded_and_trimmed() {
        let s = Schema::static_relation(vec![AttrDef::new(
            "s",
            Domain::Char(8),
        )])
        .unwrap();
        let codec = RowCodec::new(&s);
        let buf = codec.encode(&[Value::Str("ab".into())]).unwrap();
        assert_eq!(&buf, b"ab      ");
        assert_eq!(codec.get(&buf, 0), Value::Str("ab".into()));
    }

    #[test]
    fn put_time_updates_in_place() {
        let s = temporal_schema();
        let codec = RowCodec::new(&s);
        let t0 = TimeVal::from_ymd(1980, 1, 5).unwrap();
        let mut buf = codec
            .encode(&[
                Value::Int(1),
                Value::Int(2),
                Value::Int(3),
                Value::Str("x".into()),
                Value::Time(t0),
                Value::Time(TimeVal::FOREVER),
                Value::Time(t0),
                Value::Time(TimeVal::FOREVER),
            ])
            .unwrap();
        let stop_idx = s.index_of("transaction_stop").unwrap();
        let t1 = TimeVal::from_ymd(1980, 2, 1).unwrap();
        codec.put_time(&mut buf, stop_idx, t1);
        assert_eq!(codec.get_time(&buf, stop_idx), t1);
        // Other fields untouched.
        assert_eq!(codec.get_i4(&buf, 0), 1);
    }

    #[test]
    fn arity_and_width_mismatches_error() {
        let s = temporal_schema();
        let codec = RowCodec::new(&s);
        assert!(matches!(
            codec.encode(&[Value::Int(1)]),
            Err(Error::RowSize { .. })
        ));
        assert!(matches!(
            codec.decode(&[0u8; 3]),
            Err(Error::RowSize { .. })
        ));
    }

    #[test]
    fn domain_violation_errors() {
        let s =
            Schema::static_relation(vec![AttrDef::new("n", Domain::I2)])
                .unwrap();
        let codec = RowCodec::new(&s);
        assert!(codec.encode(&[Value::Int(100_000)]).is_err());
        assert!(codec.encode(&[Value::Str("x".into())]).is_err());
    }

    #[test]
    fn negative_integers_roundtrip() {
        let s = Schema::static_relation(vec![
            AttrDef::new("a", Domain::I1),
            AttrDef::new("b", Domain::I2),
            AttrDef::new("c", Domain::I4),
            AttrDef::new("d", Domain::F8),
        ])
        .unwrap();
        let codec = RowCodec::new(&s);
        let vals = vec![
            Value::Int(-128),
            Value::Int(-32_768),
            Value::Int(-2_147_483_648),
            Value::Float(-1.5),
        ];
        let buf = codec.encode(&vals).unwrap();
        assert_eq!(codec.decode(&buf).unwrap(), vals);
    }
}
