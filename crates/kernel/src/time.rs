//! The temporal attribute type of the prototype.
//!
//! The paper represents a temporal attribute as "a 32 bit integer with a
//! resolution of one second"; it "has a distinct type, so that input and
//! output can be done in human readable form by automatically converting to
//! and from the internal representation. Various formats of date and time are
//! accepted for input, and resolutions ranging from a second to a year are
//! selectable for output."
//!
//! [`TimeVal`] is exactly that: an unsigned 32-bit count of seconds since
//! 1970-01-01 00:00:00 UTC, with [`TimeVal::FOREVER`] (`u32::MAX`) denoting
//! the open end of a still-current version, and [`TimeVal::BEGINNING`] (zero)
//! the earliest representable instant. Calendar math is implemented from
//! first principles (proleptic Gregorian, no leap seconds — same model as the
//! original Unix `time_t` the prototype inherited from Ingres).

use crate::error::{Error, Result};
use std::fmt;

/// Seconds per minute/hour/day.
pub const SECS_PER_MINUTE: u32 = 60;
/// Seconds per hour.
pub const SECS_PER_HOUR: u32 = 3_600;
/// Seconds per day.
pub const SECS_PER_DAY: u32 = 86_400;

/// An instant in time with one-second resolution.
///
/// Ordered chronologically; `FOREVER` sorts after every real instant, which
/// is what makes the "current version" predicate (`stop == FOREVER`, or more
/// generally `start <= t && t < stop`) a plain integer comparison.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeVal(pub u32);

/// A broken-down civil date/time in UTC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Civil {
    /// Full year, e.g. `1980`.
    pub year: i32,
    /// Month, `1..=12`.
    pub month: u32,
    /// Day of month, `1..=31`.
    pub day: u32,
    /// Hour, `0..=23`.
    pub hour: u32,
    /// Minute, `0..=59`.
    pub minute: u32,
    /// Second, `0..=59`.
    pub second: u32,
}

/// Output resolution for formatting a [`TimeVal`].
///
/// The prototype lets the user select any resolution from a second to a
/// year; coarser resolutions simply omit the finer fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Granularity {
    /// `08:00:30 1/1/1980`
    #[default]
    Second,
    /// `08:00 1/1/1980`
    Minute,
    /// `08:00 1/1/1980` (minutes shown as `:00`)
    Hour,
    /// `1/1/1980`
    Day,
    /// `Jan 1980`
    Month,
    /// `1980`
    Year,
}

const MONTH_NAMES: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct",
    "Nov", "Dec",
];

/// Days from 1970-01-01 to `year-month-day` in the proleptic Gregorian
/// calendar. Howard Hinnant's `days_from_civil` algorithm.
fn days_from_civil(year: i32, month: u32, day: u32) -> i64 {
    let y = if month <= 2 { year - 1 } else { year } as i64;
    let m = month as i64;
    let d = day as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`]: civil date for a day count since
/// 1970-01-01.
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y } as i32, m, d)
}

/// True iff `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// Number of days in `month` of `year`.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

impl Civil {
    /// Validate field ranges.
    fn check(&self) -> Result<()> {
        if self.month == 0 || self.month > 12 {
            return Err(Error::BadTime(format!(
                "month {} out of range",
                self.month
            )));
        }
        if self.day == 0 || self.day > days_in_month(self.year, self.month)
        {
            return Err(Error::BadTime(format!(
                "day {} out of range for {}/{}",
                self.day, self.month, self.year
            )));
        }
        if self.hour > 23 || self.minute > 59 || self.second > 59 {
            return Err(Error::BadTime(format!(
                "time of day {:02}:{:02}:{:02} out of range",
                self.hour, self.minute, self.second
            )));
        }
        Ok(())
    }
}

impl TimeVal {
    /// The earliest representable instant, 1970-01-01 00:00:00 UTC.
    pub const BEGINNING: TimeVal = TimeVal(0);
    /// The open end of time: a version with `stop == FOREVER` is current.
    pub const FOREVER: TimeVal = TimeVal(u32::MAX);

    /// Construct from a raw second count.
    pub const fn from_secs(secs: u32) -> Self {
        TimeVal(secs)
    }

    /// The raw second count.
    pub const fn as_secs(self) -> u32 {
        self.0
    }

    /// True iff this is the distinguished `FOREVER` value.
    pub const fn is_forever(self) -> bool {
        self.0 == u32::MAX
    }

    /// Construct from civil fields; errors if any field is out of range or
    /// the instant is not representable in 32 bits.
    pub fn from_civil(c: Civil) -> Result<Self> {
        c.check()?;
        let days = days_from_civil(c.year, c.month, c.day);
        let secs = days * SECS_PER_DAY as i64
            + (c.hour * SECS_PER_HOUR
                + c.minute * SECS_PER_MINUTE
                + c.second) as i64;
        if !(0..u32::MAX as i64).contains(&secs) {
            return Err(Error::BadTime(format!(
                "{}-{:02}-{:02} is outside the representable range",
                c.year, c.month, c.day
            )));
        }
        Ok(TimeVal(secs as u32))
    }

    /// Convenience constructor from `(y, m, d, hh, mm, ss)`.
    pub fn from_ymd_hms(
        year: i32,
        month: u32,
        day: u32,
        hour: u32,
        minute: u32,
        second: u32,
    ) -> Result<Self> {
        Self::from_civil(Civil {
            year,
            month,
            day,
            hour,
            minute,
            second,
        })
    }

    /// Midnight at the start of the given date.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Result<Self> {
        Self::from_ymd_hms(year, month, day, 0, 0, 0)
    }

    /// Break this instant into civil fields. `FOREVER` has no civil form and
    /// is reported as the last representable second.
    pub fn to_civil(self) -> Civil {
        let days = (self.0 / SECS_PER_DAY) as i64;
        let rem = self.0 % SECS_PER_DAY;
        let (year, month, day) = civil_from_days(days);
        Civil {
            year,
            month,
            day,
            hour: rem / SECS_PER_HOUR,
            minute: (rem % SECS_PER_HOUR) / SECS_PER_MINUTE,
            second: rem % SECS_PER_MINUTE,
        }
    }

    /// Saturating addition of a number of seconds; never reaches `FOREVER`.
    pub fn saturating_add_secs(self, secs: u32) -> TimeVal {
        TimeVal(self.0.saturating_add(secs).min(u32::MAX - 1))
    }

    /// Parse a date/time literal. Accepted formats (all the ones the
    /// prototype's examples use, plus ISO dates):
    ///
    /// * `"now"` is **not** accepted here — "now" is resolved against the
    ///   transaction clock by the binder, which knows the statement's
    ///   evaluation time. Use [`crate::clock::Clock`].
    /// * `"forever"` / `"infinity"` → [`TimeVal::FOREVER`]
    /// * `"beginning"` / `"epoch"` → [`TimeVal::BEGINNING`]
    /// * `"1981"` → 1981-01-01 00:00:00
    /// * `"1/1/80"`, `"01/15/1980"` → month/day/year, midnight
    /// * `"1980-01-15"` → ISO year-month-day, midnight
    /// * `"08:00 1/1/80"`, `"4:00 1/1/80"`, `"08:00:30 1/1/80"` — time of
    ///   day, then date (the paper's own literal syntax)
    /// * `"1/1/80 08:00"`, `"1980-01-15 08:00:30"` — date, then time of day
    /// * `"Jan 15 1980"`, `"Jan 15, 1980 08:00"` — month-name forms
    ///
    /// Two-digit years are windowed: `70..=99` → 19xx, `00..=69` → 20xx.
    pub fn parse(s: &str) -> Result<Self> {
        let t = s.trim();
        if t.is_empty() {
            return Err(Error::BadTime("empty date/time literal".into()));
        }
        match t.to_ascii_lowercase().as_str() {
            "forever" | "infinity" => return Ok(TimeVal::FOREVER),
            "beginning" | "epoch" => return Ok(TimeVal::BEGINNING),
            "now" => return Err(Error::BadTime(
                "\"now\" must be resolved against the transaction clock"
                    .into(),
            )),
            _ => {}
        }
        // Split into whitespace-separated fields; each is a time-of-day,
        // a date, a bare year, a month name, or a day/year number following
        // a month name.
        let mut date: Option<(i32, u32, u32)> = None;
        let mut tod: Option<(u32, u32, u32)> = None;
        let mut month_name: Option<u32> = None;
        let mut pending: Vec<u32> = Vec::new(); // numbers after a month name

        for field in t.split_whitespace() {
            let field = field.trim_end_matches(',');
            if field.contains(':') {
                if tod.is_some() {
                    return Err(Error::BadTime(format!(
                        "two times of day in {s:?}"
                    )));
                }
                tod = Some(parse_time_of_day(field)?);
            } else if field.contains('/') {
                if date.is_some() || month_name.is_some() {
                    return Err(Error::BadTime(format!(
                        "two dates in {s:?}"
                    )));
                }
                date = Some(parse_slash_date(field)?);
            } else if field.contains('-') {
                if date.is_some() || month_name.is_some() {
                    return Err(Error::BadTime(format!(
                        "two dates in {s:?}"
                    )));
                }
                date = Some(parse_iso_date(field)?);
            } else if let Some(m) = parse_month_name(field) {
                if date.is_some() || month_name.is_some() {
                    return Err(Error::BadTime(format!(
                        "two dates in {s:?}"
                    )));
                }
                month_name = Some(m);
            } else if let Ok(n) = field.parse::<u32>() {
                pending.push(n);
            } else {
                return Err(Error::BadTime(format!(
                    "unrecognized field {field:?} in {s:?}"
                )));
            }
        }

        if let Some(m) = month_name {
            // "Jan 15 1980" or "Jan 1980"
            let (day, year) = match pending.as_slice() {
                [d, y] => (*d, window_year(*y)),
                [y] if *y >= 100 => (1, *y as i32),
                _ => {
                    return Err(Error::BadTime(format!(
                        "month-name date needs a year in {s:?}"
                    )))
                }
            };
            date = Some((year, m, day));
        } else if date.is_none() {
            // A bare year like "1981".
            match pending.as_slice() {
                [y] if *y >= 1970 => date = Some((*y as i32, 1, 1)),
                _ => {
                    return Err(Error::BadTime(format!(
                        "cannot interpret {s:?} as a date/time"
                    )))
                }
            }
        } else if !pending.is_empty() {
            return Err(Error::BadTime(format!(
                "stray number in date/time {s:?}"
            )));
        }

        let (year, month, day) = date
            .ok_or_else(|| Error::BadTime(format!("no date in {s:?}")))?;
        let (hour, minute, second) = tod.unwrap_or((0, 0, 0));
        TimeVal::from_civil(Civil {
            year,
            month,
            day,
            hour,
            minute,
            second,
        })
    }

    /// Format at the given output resolution.
    pub fn format(self, g: Granularity) -> String {
        if self.is_forever() {
            return "forever".into();
        }
        let c = self.to_civil();
        match g {
            Granularity::Second => format!(
                "{:02}:{:02}:{:02} {}/{}/{}",
                c.hour, c.minute, c.second, c.month, c.day, c.year
            ),
            Granularity::Minute | Granularity::Hour => format!(
                "{:02}:{:02} {}/{}/{}",
                c.hour, c.minute, c.month, c.day, c.year
            ),
            Granularity::Day => format!("{}/{}/{}", c.month, c.day, c.year),
            Granularity::Month => {
                format!(
                    "{} {}",
                    MONTH_NAMES[(c.month - 1) as usize],
                    c.year
                )
            }
            Granularity::Year => format!("{}", c.year),
        }
    }
}

/// Apply the two-digit-year window.
fn window_year(y: u32) -> i32 {
    match y {
        0..=69 => (2000 + y) as i32,
        70..=99 => (1900 + y) as i32,
        _ => y as i32,
    }
}

fn parse_time_of_day(s: &str) -> Result<(u32, u32, u32)> {
    let parts: Vec<&str> = s.split(':').collect();
    let bad = || Error::BadTime(format!("bad time of day {s:?}"));
    let num = |p: &str| p.parse::<u32>().map_err(|_| bad());
    match parts.as_slice() {
        [h, m] => Ok((num(h)?, num(m)?, 0)),
        [h, m, sec] => Ok((num(h)?, num(m)?, num(sec)?)),
        _ => Err(bad()),
    }
}

fn parse_slash_date(s: &str) -> Result<(i32, u32, u32)> {
    let parts: Vec<&str> = s.split('/').collect();
    let bad = || Error::BadTime(format!("bad date {s:?}"));
    if parts.len() != 3 {
        return Err(bad());
    }
    let m: u32 = parts[0].parse().map_err(|_| bad())?;
    let d: u32 = parts[1].parse().map_err(|_| bad())?;
    let y: u32 = parts[2].parse().map_err(|_| bad())?;
    Ok((window_year(y), m, d))
}

fn parse_iso_date(s: &str) -> Result<(i32, u32, u32)> {
    let parts: Vec<&str> = s.split('-').collect();
    let bad = || Error::BadTime(format!("bad ISO date {s:?}"));
    if parts.len() != 3 {
        return Err(bad());
    }
    let y: i32 = parts[0].parse().map_err(|_| bad())?;
    let m: u32 = parts[1].parse().map_err(|_| bad())?;
    let d: u32 = parts[2].parse().map_err(|_| bad())?;
    Ok((y, m, d))
}

fn parse_month_name(s: &str) -> Option<u32> {
    if s.len() < 3 {
        return None;
    }
    let lower = s.to_ascii_lowercase();
    MONTH_NAMES
        .iter()
        .position(|m| lower.starts_with(&m.to_ascii_lowercase()))
        .map(|i| i as u32 + 1)
}

impl fmt::Display for TimeVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.format(Granularity::Second))
    }
}

impl fmt::Debug for TimeVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_forever() {
            write!(f, "TimeVal(forever)")
        } else {
            write!(f, "TimeVal({} = {})", self.0, self)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(TimeVal::from_ymd(1970, 1, 1).unwrap(), TimeVal(0));
    }

    #[test]
    fn known_instants() {
        // 1980-01-01 00:00:00 UTC == 315532800
        assert_eq!(
            TimeVal::from_ymd(1980, 1, 1).unwrap().as_secs(),
            315_532_800
        );
        // 1981-01-01 00:00:00 UTC == 347155200
        assert_eq!(
            TimeVal::from_ymd(1981, 1, 1).unwrap().as_secs(),
            347_155_200
        );
    }

    #[test]
    fn civil_roundtrip_on_leap_day() {
        let t = TimeVal::from_ymd_hms(1980, 2, 29, 12, 30, 45).unwrap();
        let c = t.to_civil();
        assert_eq!((c.year, c.month, c.day), (1980, 2, 29));
        assert_eq!((c.hour, c.minute, c.second), (12, 30, 45));
    }

    #[test]
    fn rejects_invalid_civil_fields() {
        assert!(TimeVal::from_ymd(1981, 2, 29).is_err());
        assert!(TimeVal::from_ymd(1980, 13, 1).is_err());
        assert!(TimeVal::from_ymd(1980, 0, 1).is_err());
        assert!(TimeVal::from_ymd_hms(1980, 1, 1, 24, 0, 0).is_err());
        assert!(TimeVal::from_ymd(1969, 12, 31).is_err());
    }

    #[test]
    fn parses_paper_literals() {
        // The literals that appear verbatim in the paper.
        assert_eq!(
            TimeVal::parse("08:00 1/1/80").unwrap(),
            TimeVal::from_ymd_hms(1980, 1, 1, 8, 0, 0).unwrap()
        );
        assert_eq!(
            TimeVal::parse("4:00 1/1/80").unwrap(),
            TimeVal::from_ymd_hms(1980, 1, 1, 4, 0, 0).unwrap()
        );
        assert_eq!(
            TimeVal::parse("1981").unwrap(),
            TimeVal::from_ymd(1981, 1, 1).unwrap()
        );
    }

    #[test]
    fn parses_other_formats() {
        let want = TimeVal::from_ymd_hms(1980, 1, 15, 8, 0, 30).unwrap();
        for s in [
            "08:00:30 1/15/80",
            "1/15/1980 08:00:30",
            "1980-01-15 08:00:30",
            "Jan 15 1980 08:00:30",
            "Jan 15, 1980 08:00:30",
        ] {
            assert_eq!(TimeVal::parse(s).unwrap(), want, "parsing {s:?}");
        }
        assert_eq!(
            TimeVal::parse("Feb 1980").unwrap(),
            TimeVal::from_ymd(1980, 2, 1).unwrap()
        );
        assert_eq!(TimeVal::parse("forever").unwrap(), TimeVal::FOREVER);
        assert_eq!(
            TimeVal::parse("beginning").unwrap(),
            TimeVal::BEGINNING
        );
    }

    #[test]
    fn rejects_garbage() {
        for s in ["", "not a date", "1/2", "12:00", "now", "1/1/80 2/2/81"]
        {
            assert!(TimeVal::parse(s).is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn two_digit_year_window() {
        assert_eq!(
            TimeVal::parse("1/1/99").unwrap(),
            TimeVal::from_ymd(1999, 1, 1).unwrap()
        );
        assert_eq!(
            TimeVal::parse("1/1/05").unwrap(),
            TimeVal::from_ymd(2005, 1, 1).unwrap()
        );
    }

    #[test]
    fn formats_at_all_granularities() {
        let t = TimeVal::from_ymd_hms(1980, 1, 1, 8, 0, 30).unwrap();
        assert_eq!(t.format(Granularity::Second), "08:00:30 1/1/1980");
        assert_eq!(t.format(Granularity::Minute), "08:00 1/1/1980");
        assert_eq!(t.format(Granularity::Hour), "08:00 1/1/1980");
        assert_eq!(t.format(Granularity::Day), "1/1/1980");
        assert_eq!(t.format(Granularity::Month), "Jan 1980");
        assert_eq!(t.format(Granularity::Year), "1980");
        assert_eq!(TimeVal::FOREVER.format(Granularity::Second), "forever");
    }

    #[test]
    fn forever_sorts_last() {
        let now = TimeVal::from_ymd(1980, 1, 1).unwrap();
        assert!(now < TimeVal::FOREVER);
        assert!(TimeVal::BEGINNING < now);
    }

    #[test]
    fn format_parse_roundtrip_at_second_granularity() {
        let t = TimeVal::from_ymd_hms(2024, 6, 15, 23, 59, 59).unwrap();
        let s = t.format(Granularity::Second);
        assert_eq!(TimeVal::parse(&s).unwrap(), t);
    }
}
